use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use ras_isa::{
    abi, CodeAddr, DataAddr, DataImage, DecodedProgram, Program, Reg, RseqCs,
    RSEQ_CS_NO_RESTART_ON_PREEMPT,
};
use ras_machine::{
    CpuProfile, EngineKind, Exit, Fault, Machine, PagingConfig, RegFile, TranslationCache,
    TranslationStats,
};
use ras_obs::{ObsEvent, Recorder, Recording, SwitchReason, Telemetry};

use crate::runq::{join_push, IntrusiveQueue, WaitBuckets, WaitCheckpoint, NIL};
use crate::{
    CheckTime, Event, KernelStats, PreemptionPolicy, Strategy, StrategyKind, Tcb, ThreadId,
    ThreadState, TimedEvent,
};

/// Configuration for [`Kernel::boot`].
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// The CPU the kernel runs on.
    pub profile: CpuProfile,
    /// Data memory size in bytes.
    pub mem_bytes: u32,
    /// Which atomicity strategy the kernel supports.
    pub strategy: StrategyKind,
    /// When the PC check runs (§4.1).
    pub check_time: CheckTime,
    /// Preemption quantum in cycles. The DECstation's 100 Hz tick at
    /// 25 MHz corresponds to 250,000 cycles.
    pub quantum: u64,
    /// Extra random delay added to each quantum, `0..=jitter` cycles.
    pub jitter: u64,
    /// Seed for the jitter generator.
    pub seed: u64,
    /// Optional demand paging.
    pub paging: Option<PagingConfig>,
    /// Per-thread stack size in bytes.
    pub stack_bytes: u32,
    /// Maximum number of threads (TCBs are never reclaimed).
    pub max_threads: usize,
    /// Collect the per-opcode instruction mix. Off by default: the
    /// histogram adds bookkeeping to the machine's hot loop, so only
    /// experiments that read [`ras_machine::Machine::instruction_mix`]
    /// should turn it on.
    pub collect_mix: bool,
    /// Which execution engine drives guest timeslices. The translated
    /// engine compiles hot traces into host closures (see
    /// [`ras_machine::TranslationCache`]) and is architecturally
    /// indistinguishable from the interpreter; the kernel builds the
    /// cache once at boot and shares it across every thread, since all
    /// threads execute the same program image.
    pub engine: EngineKind,
}

impl KernelConfig {
    /// A configuration with paper-realistic defaults: 8 MiB of memory, a
    /// 250,000-cycle quantum (10 ms at 25 MHz), 64 KiB stacks.
    pub fn new(profile: CpuProfile, strategy: StrategyKind) -> KernelConfig {
        KernelConfig {
            profile,
            mem_bytes: 8 * 1024 * 1024,
            strategy,
            check_time: CheckTime::OnSuspend,
            quantum: 250_000,
            jitter: 0,
            seed: 0,
            paging: None,
            stack_bytes: abi::DEFAULT_STACK_BYTES,
            max_threads: 64,
            collect_mix: false,
            engine: EngineKind::default(),
        }
    }
}

/// Why [`Kernel::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread exited.
    Completed,
    /// A thread executed `halt` directly (bare-metal style programs).
    Halted,
    /// No thread is runnable but some are blocked — a guest deadlock.
    Deadlock {
        /// The blocked threads.
        blocked: Vec<ThreadId>,
    },
    /// A thread faulted irrecoverably (guest bug).
    Fault {
        /// The faulting thread.
        thread: ThreadId,
        /// The fault.
        fault: Fault,
    },
    /// The cycle budget given to [`Kernel::run`] ran out; call `run` again
    /// to continue.
    OutOfFuel,
}

/// What a single [`Kernel::step_once`] call did.
///
/// Unlike [`Outcome`], this reports progress at instruction granularity:
/// the model checker in `ras-model` inspects the kernel between steps and
/// injects preemptions explicitly instead of relying on the timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// A thread was dispatched, or retired one instruction (possibly a
    /// syscall, handled to completion).
    Ran {
        /// The thread that made progress.
        thread: ThreadId,
    },
    /// Nothing runnable; the processor idled until the earliest sleeping
    /// thread's wake-up time.
    Idled,
    /// Every thread exited.
    Completed,
    /// A thread executed `halt` directly.
    Halted {
        /// The halting thread.
        thread: ThreadId,
    },
    /// No thread is runnable or sleeping but some are blocked.
    Deadlock {
        /// The blocked threads.
        blocked: Vec<ThreadId>,
    },
    /// A thread faulted irrecoverably.
    Fault {
        /// The faulting thread.
        thread: ThreadId,
        /// The fault.
        fault: Fault,
    },
}

/// Error booting a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootError {
    /// The data image does not fit below the stack region.
    DataTooLarge {
        /// Bytes required by the data image.
        need: u32,
        /// Bytes available.
        have: u32,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::DataTooLarge { need, have } => {
                write!(
                    f,
                    "data image needs {need} bytes but only {have} fit below the stacks"
                )
            }
            BootError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for BootError {}

/// The simulated uniprocessor operating system.
///
/// Owns the machine, the program image, every thread's saved state, the
/// run and wait queues, and the configured atomicity strategy. Drives
/// execution with a preemption timer and performs the restartable-atomic-
/// sequence PC checks whenever a thread is suspended (§3–§4 of the paper).
///
/// # Example
///
/// ```
/// use ras_isa::{abi, Asm, DataLayout, Reg};
/// use ras_kernel::{Kernel, KernelConfig, Outcome, StrategyKind};
/// use ras_machine::CpuProfile;
///
/// // A main thread that stores 7 to address 0 and exits.
/// let mut asm = Asm::new();
/// asm.li(Reg::T0, 7);
/// asm.sw(Reg::T0, Reg::ZERO, 0);
/// asm.li(Reg::V0, abi::SYS_EXIT as i32);
/// asm.syscall();
/// let program = asm.finish()?;
///
/// let config = KernelConfig::new(CpuProfile::r3000(), StrategyKind::None);
/// let mut kernel = Kernel::boot(config, program, &DataLayout::new().finish())?;
/// assert_eq!(kernel.run(1_000_000), Outcome::Completed);
/// assert_eq!(kernel.read_word(0)?, 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    machine: Machine,
    /// The linkable image (symbols, sequence ranges) — shared so cloning a
    /// kernel snapshot (the model checker does this per decision point) is
    /// a reference-count bump, not a code copy.
    program: Arc<Program>,
    /// The predecoded execution image the machine actually runs. Built
    /// once at boot; `Program::patch` only happens pre-boot.
    decoded: Arc<DecodedProgram>,
    threads: Vec<Tcb>,
    /// Intrusive ready FIFO threaded through `threads`; every
    /// enqueue/dequeue/targeted-removal path is O(1) and `len` is a
    /// maintained counter.
    ready: IntrusiveQueue,
    current: Option<ThreadId>,
    last_running: Option<ThreadId>,
    strategy: Strategy,
    check_time: CheckTime,
    policy: PreemptionPolicy,
    slice_deadline: u64,
    /// Futex-style wait buckets keyed by lock word; chains threaded
    /// through `threads`. Join chains hang off each target's TCB.
    waiters: WaitBuckets,
    /// Sleeping threads ordered by wake time (min-heap).
    sleepers: std::collections::BinaryHeap<std::cmp::Reverse<(u64, ThreadId)>>,
    stats: KernelStats,
    output: Vec<u32>,
    live: usize,
    data_end: u32,
    stack_bytes: u32,
    max_threads: usize,
    page_fifo: VecDeque<usize>,
    max_resident: usize,
    timeline: Option<Vec<TimedEvent>>,
    /// Structured observability recording ([`ras_obs`]). Boxed so the
    /// disabled case costs one pointer in the TCB-dense kernel struct and
    /// a snapshot clone (the model checker's per-decision copy) stays
    /// cheap. `None` means every emit site is a single branch.
    recording: Option<Box<Recording>>,
    /// Streaming lock/scheduler telemetry ([`ras_obs::Telemetry`]),
    /// standalone so enabling it does not drag the full [`Recording`]
    /// event fold along: a telemetry run pays for the boundary drains
    /// and the two scheduler events it consumes, nothing else.
    telemetry: Option<Box<Telemetry>>,
    /// A fault detected inside a kernel path (e.g. user stack overflow
    /// during a redirect), delivered at the top of the run loop.
    pending_fault: Option<(ThreadId, Fault)>,
    /// The translation cache when the kernel was booted with
    /// [`EngineKind::Translated`]; `None` runs the plain interpreter.
    /// Derived state: rebuilt from the program at boot, shared across
    /// threads, and deliberately absent from [`Checkpoint`] — rewinding
    /// guest state never invalidates compiled code, and heat counters
    /// are observational, like the timeline.
    translation: Option<TranslationCache>,
}

/// A lightweight kernel checkpoint: everything [`Kernel::restore`]
/// rewinds *by value* — thread control blocks, queues, scheduler and
/// strategy state, statistics — plus a machine checkpoint whose undo-log
/// mark rewinds guest memory in O(stores since the checkpoint).
///
/// The by-value part is tiny (the TCB slab and a few queue headers);
/// the guest memory image, which dominates a full [`Kernel::clone`],
/// is never copied. This is what lets the model checker's DFS rewind a
/// sibling branch for the cost of the writes the branch made. Since the
/// scheduler's chains (ready queue, wait buckets, join chains) are
/// threaded *through* the TCBs, cloning the slab captures them too:
/// the former per-node `HashMap` clones are now twelve-byte headers.
///
/// Append-only observational state (timeline, obs recording, the
/// machine's mix/trace/profile collectors) is not rewound: it describes
/// what was executed, and the explorer runs with it disabled.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    machine: ras_machine::MachineCheckpoint,
    threads: Vec<Tcb>,
    ready: IntrusiveQueue,
    current: Option<ThreadId>,
    last_running: Option<ThreadId>,
    /// The one piece of mutable strategy state: the Mach-style explicit
    /// registration (`SYS_RAS_REGISTER` replaces it). `None` also for
    /// strategies without a registration slot.
    registered_range: Option<(CodeAddr, u32)>,
    policy: PreemptionPolicy,
    slice_deadline: u64,
    waiters: WaitCheckpoint,
    sleepers: std::collections::BinaryHeap<std::cmp::Reverse<(u64, ThreadId)>>,
    stats: KernelStats,
    output_len: usize,
    live: usize,
    page_fifo: VecDeque<usize>,
    pending_fault: Option<(ThreadId, Fault)>,
}

impl Checkpoint {
    /// Approximate bytes this checkpoint copied by value — what the
    /// explorer's `snapshot_bytes` counter accumulates, for comparing
    /// checkpointing against full kernel clones.
    pub fn approx_bytes(&self) -> u64 {
        let tcbs = self.threads.len() * std::mem::size_of::<Tcb>();
        let queues = (self.sleepers.len() + self.page_fifo.len()) * std::mem::size_of::<ThreadId>()
            + self.waiters.approx_bytes();
        let fixed = std::mem::size_of::<Checkpoint>();
        (tcbs + queues + fixed) as u64
    }
}

impl Kernel {
    /// Boots a kernel: installs the data image, configures paging and the
    /// timer, and creates the main thread at the program's entry point.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] if the program is empty or the data image
    /// does not fit.
    pub fn boot(
        config: KernelConfig,
        program: Program,
        data: &DataImage,
    ) -> Result<Kernel, BootError> {
        if program.is_empty() {
            return Err(BootError::EmptyProgram);
        }
        let mut machine = Machine::new(config.profile.clone(), config.mem_bytes);
        if config.collect_mix {
            machine.enable_mix();
        }
        let stack_region = config.stack_bytes * config.max_threads as u32;
        let have = config.mem_bytes.saturating_sub(stack_region);
        if data.len_bytes() > have {
            return Err(BootError::DataTooLarge {
                need: data.len_bytes(),
                have,
            });
        }
        for &(addr, value) in data.initializers() {
            machine
                .mem_mut()
                .store_kernel(addr, value)
                .expect("initializer inside validated image");
        }
        let max_resident = config.paging.map_or(0, |p| p.max_resident);
        if let Some(paging) = config.paging {
            machine.mem_mut().enable_paging(paging);
        }
        let policy = PreemptionPolicy::new(config.quantum, config.jitter, config.seed);
        let decoded = Arc::new(DecodedProgram::new(&program));
        let translation = match config.engine {
            EngineKind::Interpreter => None,
            EngineKind::Translated => {
                // Rollback and abort targets become extra block leaders:
                // a thread restarted at a sequence head (or landing on an
                // rseq abort handler) resumes straight into compiled code
                // instead of interpreting its way to the next leader.
                let mut extra: Vec<CodeAddr> = Vec::new();
                for r in program.seq_ranges() {
                    extra.push(r.start);
                    extra.push(r.end());
                }
                for d in program.rseq_descs() {
                    extra.push(d.start_ip);
                    extra.push(d.post_commit_ip());
                    extra.push(d.abort_ip);
                }
                Some(TranslationCache::new(&decoded, &config.profile, &extra))
            }
        };
        let mut kernel = Kernel {
            machine,
            program: Arc::new(program),
            decoded,
            // Pooled up front: spawning the 10k-client workload never
            // reallocates the TCB slab (which intrusive links thread
            // through) mid-run.
            threads: Vec::with_capacity(config.max_threads),
            ready: IntrusiveQueue::EMPTY,
            current: None,
            last_running: None,
            strategy: Strategy::from_kind(&config.strategy),
            check_time: config.check_time,
            policy,
            slice_deadline: 0,
            waiters: WaitBuckets::new(config.max_threads),
            sleepers: std::collections::BinaryHeap::new(),
            stats: KernelStats::new(),
            output: Vec::new(),
            live: 0,
            data_end: data.len_bytes(),
            stack_bytes: config.stack_bytes,
            max_threads: config.max_threads,
            page_fifo: VecDeque::new(),
            max_resident,
            timeline: None,
            recording: None,
            telemetry: None,
            pending_fault: None,
            translation,
        };
        let entry = kernel.program.entry();
        kernel
            .spawn_thread(entry, 0)
            .expect("main thread always fits");
        Ok(kernel)
    }

    // --- accessors ---------------------------------------------------------

    /// The machine (clock, memory, profile).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The loaded program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The execution engine this kernel was booted with.
    pub fn engine(&self) -> EngineKind {
        if self.translation.is_some() {
            EngineKind::Translated
        } else {
            EngineKind::Interpreter
        }
    }

    /// Translation-tier statistics, or `None` under the interpreter
    /// engine.
    pub fn translation_stats(&self) -> Option<TranslationStats> {
        self.translation.as_ref().map(|c| c.stats())
    }

    /// Values logged by guest `SYS_PRINT` calls.
    pub fn output(&self) -> &[u32] {
        &self.output
    }

    /// Number of threads ever created.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// A thread's scheduling state.
    ///
    /// # Panics
    ///
    /// Panics if the id was never allocated.
    pub fn thread_state(&self, id: ThreadId) -> &ThreadState {
        &self.threads[id.0 as usize].state
    }

    /// User-mode cycles a thread has executed so far.
    ///
    /// # Panics
    ///
    /// Panics if the id was never allocated.
    pub fn thread_cycles(&self, id: ThreadId) -> u64 {
        self.threads[id.0 as usize].user_cycles
    }

    /// Reads a word of guest memory (kernel-privileged).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn read_word(&self, addr: DataAddr) -> Result<u32, ras_machine::MemError> {
        self.machine.mem().load_kernel(addr)
    }

    /// Writes a word of guest memory (kernel-privileged).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn write_word(&mut self, addr: DataAddr, value: u32) -> Result<(), ras_machine::MemError> {
        self.machine.mem_mut().store_kernel(addr, value)
    }

    /// Starts recording the event timeline. Every scheduling and recovery
    /// decision from this point on is appended (unbounded — enable only
    /// for runs you intend to inspect).
    pub fn enable_timeline(&mut self) {
        if self.timeline.is_none() {
            self.timeline = Some(Vec::new());
            // Threads spawned before this point (at minimum the main
            // thread, created during boot) produced no Spawn events; the
            // Boot marker tells consumers how many they missed.
            self.record(Event::Boot {
                threads: self.threads.len() as u32,
            });
        }
    }

    /// The recorded events (empty unless [`Kernel::enable_timeline`] was
    /// called).
    pub fn timeline(&self) -> &[TimedEvent] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, event: Event) {
        if let Some(log) = &mut self.timeline {
            log.push(TimedEvent {
                clock: self.machine.clock(),
                event,
            });
        }
    }

    /// Starts structured observability recording (see [`ras_obs`]).
    /// Metrics are always aggregated; the full event stream (needed for
    /// Perfetto export) is kept only when `capture_events` is true.
    /// Idempotent: a second call never discards an active recording.
    pub fn enable_recording(&mut self, capture_events: bool) {
        if self.recording.is_none() {
            self.recording = Some(Box::new(Recording::new(capture_events)));
            self.emit(ObsEvent::Boot {
                threads: self.threads.len() as u32,
            });
        }
    }

    /// The active recording, if [`Kernel::enable_recording`] was called.
    pub fn recording(&self) -> Option<&Recording> {
        self.recording.as_deref()
    }

    /// Stops recording and returns everything captured so far.
    pub fn take_recording(&mut self) -> Option<Recording> {
        self.recording.take().map(|boxed| *boxed)
    }

    /// Starts streaming lock/scheduler telemetry over `lock_addrs` (see
    /// [`ras_obs::Telemetry`]). Turns on the machine's access log and
    /// attaches a standalone [`Telemetry`] aggregate — deliberately
    /// *not* a full [`Recording`]: telemetry consumes only the two
    /// scheduler events (dispatch, switch-out) and the boundary drains,
    /// so enabling it does not buy the whole per-event metrics fold.
    /// The kernel drains the access log at every scheduling boundary,
    /// so memory stays O(locks × histogram buckets) regardless of run
    /// length. Idempotent: a second call never discards an aggregate.
    ///
    /// With `capture_raw` true the aggregate additionally retains every
    /// watched access — O(events) memory, intended only for differential
    /// tests that compare streaming percentiles against exact ones.
    pub fn enable_telemetry(&mut self, lock_addrs: &[u32], capture_raw: bool) {
        self.machine.enable_access_log();
        // Filter at the source: only the watched lock words enter the
        // log, so its growth between boundary drains tracks lock
        // traffic, not total memory traffic.
        self.machine.set_access_watch(lock_addrs);
        if self.telemetry.is_none() {
            let mut telemetry = Telemetry::new(lock_addrs);
            telemetry.set_capture_raw(capture_raw);
            self.telemetry = Some(Box::new(telemetry));
        }
    }

    /// The attached telemetry aggregate, if [`Kernel::enable_telemetry`]
    /// was called.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the telemetry aggregate (flushing nothing:
    /// call after the run loop has returned, when all boundaries have
    /// been drained).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take().map(|boxed| *boxed)
    }

    /// Drains the machine's access log into the telemetry aggregate,
    /// attributing every access to `tid` — called at scheduling
    /// boundaries while the thread that performed the accesses is still
    /// current, so attribution is exact. No-op without telemetry.
    fn drain_telemetry(&mut self, tid: ThreadId) {
        let Kernel {
            machine, telemetry, ..
        } = self;
        if let Some(tel) = telemetry.as_deref_mut() {
            machine.drain_accesses(|a| tel.observe(tid.0, a));
        }
    }

    /// Whether any structured-event consumer is attached — the emit
    /// sites that compute extra context (e.g. "inside a sequence?")
    /// before constructing a switch-out event gate on this.
    fn observing(&self) -> bool {
        self.recording.is_some() || self.telemetry.is_some()
    }

    /// Enables the machine's per-PC cycle histogram (see
    /// [`ras_machine::Machine::enable_pc_profile`]).
    pub fn enable_pc_profile(&mut self) {
        self.machine.enable_pc_profile();
    }

    /// Cycles retired per PC (empty unless
    /// [`Kernel::enable_pc_profile`] was called).
    pub fn pc_cycles(&self) -> &[u64] {
        self.machine.pc_cycles()
    }

    fn emit(&mut self, event: ObsEvent) {
        if let Some(rec) = &mut self.recording {
            rec.record(self.machine.clock(), &event);
        }
        if let Some(tel) = &mut self.telemetry {
            tel.on_event(self.machine.clock(), &event);
        }
    }

    /// Whether `tid`'s saved PC lies strictly inside an atomic sequence —
    /// i.e. a suspension right now would interrupt partially-executed
    /// atomic work. The first instruction of a sequence is excluded: a
    /// thread parked exactly at the start has done no atomic work yet.
    fn pc_inside_sequence(&self, tid: ThreadId) -> bool {
        if self.machine.atomic_restart_pc().is_some() {
            return true;
        }
        let pc = self.threads[tid.0 as usize].regs.pc();
        if let Some((start, len)) = self.registered_range() {
            return pc > start && pc < start + len;
        }
        self.program
            .seq_ranges()
            .iter()
            .any(|r| r.contains(pc) && pc != r.start)
    }

    /// Straight-line cycle estimate of the work a rollback discards: the
    /// cost of every instruction in `[to, from)`. Sequences are loop-free
    /// by construction (ras-analyze verifies this), so the straight-line
    /// sum is exact for the common case of forward-only bodies.
    fn reexec_cycles(&self, from: CodeAddr, to: CodeAddr) -> u64 {
        let cost = *self.machine.profile().cost();
        (to..from)
            .filter_map(|pc| self.decoded.fetch(pc))
            .map(|inst| cost.inst_cycles(&inst))
            .sum()
    }

    /// Records a sequence rollback on both channels: the kernel timeline
    /// and, when recording, an [`ObsEvent::Rollback`] with the wasted
    /// re-execution cycles attributed.
    fn record_restart(&mut self, tid: ThreadId, from: CodeAddr, to: CodeAddr) {
        self.record(Event::Restart {
            thread: tid,
            from,
            to,
        });
        if self.recording.is_some() {
            let wasted = self.reexec_cycles(from, to);
            self.emit(ObsEvent::Rollback {
                thread: tid.0,
                from,
                to,
                wasted_cycles: wasted,
            });
        }
    }

    /// The registered restartable-sequence range, if the strategy is
    /// explicit registration and a registration has been made.
    pub fn registered_range(&self) -> Option<(CodeAddr, u32)> {
        match &self.strategy {
            Strategy::Registered { range } => *range,
            _ => None,
        }
    }

    /// The currently running thread, if any.
    pub fn current_thread(&self) -> Option<ThreadId> {
        self.current
    }

    /// The ready queue, front (next to dispatch) first.
    pub fn ready_threads(&self) -> Vec<ThreadId> {
        self.ready.iter(&self.threads).collect()
    }

    /// The number of ready threads — a maintained counter, not a scan.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Iterates the ready queue in dispatch order without allocating.
    pub fn ready_iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.ready.iter(&self.threads)
    }

    /// Scheduler queue depths as maintained counters: `(ready, waiting)`
    /// where `waiting` counts threads parked on lock words. O(1) — the
    /// former implementation summed every waiter queue per call, which
    /// telemetry's runqueue sampling paid on every dispatch.
    pub fn queues(&self) -> (usize, usize) {
        (self.ready.len(), self.waiters.waiting())
    }

    /// A thread's saved register state (authoritative whenever the thread
    /// is not running; for the running thread this is also the live state,
    /// since the machine operates on the TCB's registers in place).
    ///
    /// # Panics
    ///
    /// Panics if the id was never allocated.
    pub fn thread_regs(&self, id: ThreadId) -> &RegFile {
        &self.threads[id.0 as usize].regs
    }

    /// One past the last byte of the static data image. Addresses below
    /// this are shared data; addresses at or above it are thread stacks.
    pub fn data_end(&self) -> u32 {
        self.data_end
    }

    /// The `[bottom, top)` byte range of a thread's stack.
    ///
    /// # Panics
    ///
    /// Panics if the id was never allocated.
    pub fn thread_stack_range(&self, id: ThreadId) -> (DataAddr, DataAddr) {
        let top = self.threads[id.0 as usize].stack_top;
        (top.saturating_sub(self.stack_bytes), top)
    }

    // --- thread management --------------------------------------------------

    fn spawn_thread(&mut self, entry: CodeAddr, arg: u32) -> Result<ThreadId, ()> {
        if self.threads.len() >= self.max_threads {
            return Err(());
        }
        let id = ThreadId(self.threads.len() as u32);
        let stack_top = self.machine.mem().len_bytes() - id.0 * self.stack_bytes;
        let stack_bottom = stack_top.saturating_sub(self.stack_bytes);
        if stack_bottom < self.data_end {
            return Err(());
        }
        let mut regs = RegFile::new(entry);
        regs.set(Reg::A0, arg);
        regs.set(Reg::SP, stack_top - 16);
        regs.set(Reg::GP, id.0);
        // A return from the top-level function lands at an invalid PC and
        // faults loudly instead of silently running off.
        regs.set(Reg::RA, u32::MAX);
        self.threads.push(Tcb::new(id, regs, stack_top));
        self.ready.push_back(&mut self.threads, id);
        self.live += 1;
        self.stats.threads_spawned += 1;
        self.record(Event::Spawn { thread: id });
        self.emit(ObsEvent::Spawn { thread: id.0 });
        Ok(id)
    }

    fn charge_kernel(&mut self, cycles: u64) {
        self.machine.charge(cycles);
        self.stats.kernel_cycles += cycles;
    }

    /// The PC check and rollback applied when a thread is suspended (or
    /// resumed, per [`CheckTime`]). Shared by every suspension site.
    fn apply_strategy_check(&mut self, tid: ThreadId) {
        // The i860 restart bit is hardware state, inspected on every
        // transfer out of the kernel regardless of strategy; it can only
        // be set under the HardwareBit strategy's guest code.
        if let Some(restart) = self.machine.atomic_restart_pc() {
            let from = self.threads[tid.0 as usize].regs.pc();
            self.threads[tid.0 as usize].regs.set_pc(restart);
            self.machine.clear_atomic_bit();
            self.stats.ras_restarts += 1;
            self.stats.ras_checks += 1;
            self.record_restart(tid, from, restart);
            return;
        }
        if matches!(self.strategy, Strategy::Rseq) {
            self.apply_rseq_check(tid);
            return;
        }
        let pc = self.threads[tid.0 as usize].regs.pc();
        let cost = *self.machine.profile().cost();
        let (rollback, cycles) = self
            .strategy
            .check(&self.program, pc, &cost, &mut self.stats);
        self.charge_kernel(cycles);
        if let Some(start) = rollback {
            self.threads[tid.0 as usize].regs.set_pc(start);
            self.record_restart(tid, pc, start);
        }
    }

    /// The rseq strategy's preemption-time fixup, mirroring Linux's
    /// `rseq_ip_fixup`: load the suspended thread's published descriptor
    /// and, if its PC lies inside the critical-section window, redirect it
    /// to the descriptor's abort handler. The window is half-open
    /// `[start_ip, start_ip + post_commit_offset)`: a thread suspended
    /// exactly at the post-commit PC has committed and is left alone.
    ///
    /// This lives on the kernel (not [`Strategy::check`]) because it needs
    /// the thread's TCB registration and guest memory.
    fn apply_rseq_check(&mut self, tid: ThreadId) {
        let Some(area) = self.threads[tid.0 as usize].rseq_area else {
            return;
        };
        self.stats.rseq_checks += 1;
        let cost = *self.machine.profile().cost();
        self.charge_kernel(u64::from(cost.rseq_check));
        let cs_addr = self.machine.mem().load_kernel(area).unwrap_or(0);
        if cs_addr == 0 {
            return;
        }
        let word = |k: u32| self.machine.mem().load_kernel(cs_addr + 4 * k).unwrap_or(0);
        let desc = RseqCs {
            start_ip: word(0),
            post_commit_offset: word(1),
            abort_ip: word(2),
            flags: word(3),
            cs_addr,
        };
        let pc = self.threads[tid.0 as usize].regs.pc();
        if !desc.contains(pc) {
            // Outside the window with a descriptor still published: the
            // section committed (or was never entered). Clear the stale
            // pointer lazily, as Linux does, so it cannot abort a later
            // unrelated suspension at a reused address.
            let _ = self.machine.mem_mut().store_kernel(area, 0);
            return;
        }
        if desc.flags & RSEQ_CS_NO_RESTART_ON_PREEMPT != 0 {
            return;
        }
        self.threads[tid.0 as usize].regs.set_pc(desc.abort_ip);
        let _ = self.machine.mem_mut().store_kernel(area, 0);
        self.stats.rseq_aborts += 1;
        self.record(Event::RseqAbort {
            thread: tid,
            from: pc,
            abort_ip: desc.abort_ip,
        });
        if self.recording.is_some() {
            // The work thrown away is the executed window prefix
            // `[start_ip, pc)`; `record_restart`'s `(to..from)` framing
            // does not fit a forward jump to the handler.
            let wasted = self.reexec_cycles(pc, desc.start_ip);
            self.emit(ObsEvent::RseqAbort {
                thread: tid.0,
                from: pc,
                abort_ip: desc.abort_ip,
                wasted_cycles: wasted,
            });
        }
    }

    /// The suspended thread's registered rseq area address, if any — the
    /// model checker folds this into its state hash.
    pub fn thread_rseq_area(&self, id: ThreadId) -> Option<DataAddr> {
        self.threads[id.0 as usize].rseq_area
    }

    /// Bookkeeping common to every involuntary or voluntary suspension.
    fn suspend(&mut self, tid: ThreadId) {
        self.stats.suspensions += 1;
        if self.check_time == CheckTime::OnSuspend {
            self.apply_strategy_check(tid);
        } else {
            // Check deferred to resume; remember that one is owed. The
            // hardware bit still must be captured now, before another
            // thread runs.
            if let Some(restart) = self.machine.atomic_restart_pc() {
                let from = self.threads[tid.0 as usize].regs.pc();
                self.threads[tid.0 as usize].regs.set_pc(restart);
                self.machine.clear_atomic_bit();
                self.stats.ras_restarts += 1;
                self.stats.ras_checks += 1;
                self.record_restart(tid, from, restart);
            }
        }
        if matches!(self.strategy, Strategy::UserLevel { .. }) {
            self.threads[tid.0 as usize].needs_user_restart = true;
        }
    }

    fn dispatch(&mut self, tid: ThreadId) {
        if self.last_running != Some(tid) {
            self.stats.context_switches += 1;
            let cs = u64::from(self.machine.profile().cost().context_switch);
            self.charge_kernel(cs);
        }
        if self.check_time == CheckTime::OnResume {
            self.apply_strategy_check(tid);
        }
        if let Strategy::UserLevel {
            recovery_pc,
            recovery_len,
        } = self.strategy
        {
            if self.threads[tid.0 as usize].needs_user_restart {
                self.threads[tid.0 as usize].needs_user_restart = false;
                let pc = self.threads[tid.0 as usize].regs.pc();
                // Never redirect a thread that is already executing the
                // recovery routine: it resumes where it left off, with its
                // saved frame still on the stack. Without this check, a
                // quantum shorter than the routine cascades redirects and
                // overflows the user stack.
                if pc < recovery_pc || pc >= recovery_pc + recovery_len {
                    let dispatch_cost =
                        u64::from(self.machine.profile().cost().user_restart_dispatch);
                    self.charge_kernel(dispatch_cost);
                    self.stats.user_restart_redirects += 1;
                    self.record(Event::UserRedirect { thread: tid });
                    self.emit(ObsEvent::UserRedirect { thread: tid.0 });
                    let tcb = &mut self.threads[tid.0 as usize];
                    let sp = tcb.regs.get(Reg::SP).wrapping_sub(4);
                    tcb.regs.set(Reg::SP, sp);
                    tcb.regs.set_pc(recovery_pc);
                    if self.machine.mem_mut().store_kernel(sp, pc).is_err() {
                        // Guest stack overflow: surface it as a fault
                        // rather than corrupting state.
                        self.pending_fault = Some((tid, Fault::BadMemory { addr: sp, pc }));
                    }
                }
            }
        }
        self.threads[tid.0 as usize].state = ThreadState::Running;
        self.current = Some(tid);
        self.last_running = Some(tid);
        self.record(Event::Dispatch { thread: tid });
        self.emit(ObsEvent::Dispatch { thread: tid.0 });
        // Maintained counter — no queue materialisation per sample.
        let depth = self.queues().0 as u64;
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.sample_runqueue(depth);
        }
        // The timer slice starts when the thread reaches user level, so a
        // quantum buys actual user execution even when kernel overhead
        // (context switch, checks) exceeds it.
        self.slice_deadline = self.policy.next_tick(self.machine.clock());
    }

    fn timer_preempt(&mut self, tid: ThreadId) {
        self.stats.preemptions += 1;
        self.record(Event::Preempt { thread: tid });
        // Capture "inside a sequence?" before the suspension check rolls
        // the PC back — after it, the evidence is gone.
        if self.observing() {
            let inside = self.pc_inside_sequence(tid);
            self.emit(ObsEvent::SwitchOut {
                thread: tid.0,
                reason: SwitchReason::Quantum,
                inside_sequence: inside,
            });
        }
        self.suspend(tid);
        self.threads[tid.0 as usize].state = ThreadState::Ready;
        self.ready.push_back(&mut self.threads, tid);
        self.current = None;
    }

    fn handle_page_fault(&mut self, tid: ThreadId, addr: DataAddr) {
        self.stats.page_faults += 1;
        self.record(Event::PageFault { thread: tid, addr });
        self.emit(ObsEvent::PageFault {
            thread: tid.0,
            addr,
        });
        let service = u64::from(self.machine.profile().cost().page_fault_service);
        self.charge_kernel(service);
        let page = self.machine.mem_mut().make_resident(addr);
        self.page_fifo.push_back(page);
        if self.max_resident > 0 && self.page_fifo.len() > self.max_resident {
            let victim = self.page_fifo.pop_front().expect("nonempty");
            self.machine.mem_mut().evict_page(victim);
            self.stats.page_evictions += 1;
        }
        // The fault suspended the thread mid-instruction; the PC still
        // addresses the faulting instruction. If that lies inside a
        // restartable sequence the whole sequence re-executes — this is
        // the "page fault" row of the event ordering discussed in §4.2.
        if self.observing() {
            let inside = self.pc_inside_sequence(tid);
            self.emit(ObsEvent::SwitchOut {
                thread: tid.0,
                reason: SwitchReason::PageFault,
                inside_sequence: inside,
            });
        }
        self.suspend(tid);
        self.threads[tid.0 as usize].state = ThreadState::Ready;
        self.ready.push_back(&mut self.threads, tid);
        self.current = None;
    }

    // --- syscalls -----------------------------------------------------------

    fn handle_syscall(&mut self, tid: ThreadId) {
        self.stats.syscalls += 1;
        let trap = u64::from(self.machine.profile().cost().syscall_trap);
        self.charge_kernel(trap);
        let (num, a0, a1) = {
            let regs = &self.threads[tid.0 as usize].regs;
            (regs.get(Reg::V0), regs.get(Reg::A0), regs.get(Reg::A1))
        };
        self.emit(ObsEvent::Syscall { thread: tid.0, num });
        match num {
            abi::SYS_EXIT => {
                self.record(Event::Exit { thread: tid });
                self.emit(ObsEvent::SwitchOut {
                    thread: tid.0,
                    reason: SwitchReason::Exit,
                    inside_sequence: false,
                });
                self.threads[tid.0 as usize].state = ThreadState::Exited;
                self.live -= 1;
                self.current = None;
                // Wake joiners in arrival order, walking the intrusive
                // chain in place (capture each `next` before detaching).
                let mut cur = self.threads[tid.0 as usize].joiners_head;
                self.threads[tid.0 as usize].joiners_head = NIL;
                self.threads[tid.0 as usize].joiners_tail = NIL;
                while cur != NIL {
                    let j = ThreadId(cur);
                    let t = &mut self.threads[cur as usize];
                    cur = t.link_next;
                    t.link_next = NIL;
                    t.link_prev = NIL;
                    t.state = ThreadState::Ready;
                    self.ready.push_back(&mut self.threads, j);
                    self.stats.wakeups += 1;
                    self.record(Event::Wake { thread: j });
                    self.emit(ObsEvent::Wake { thread: j.0 });
                }
            }
            abi::SYS_YIELD => {
                self.stats.yields += 1;
                self.record(Event::Yield { thread: tid });
                if self.observing() {
                    let inside = self.pc_inside_sequence(tid);
                    self.emit(ObsEvent::SwitchOut {
                        thread: tid.0,
                        reason: SwitchReason::Yield,
                        inside_sequence: inside,
                    });
                }
                self.suspend(tid);
                self.threads[tid.0 as usize].state = ThreadState::Ready;
                self.ready.push_back(&mut self.threads, tid);
                self.current = None;
            }
            abi::SYS_SPAWN => {
                let result = match self.spawn_thread(a0, a1) {
                    Ok(id) => id.0,
                    Err(()) => abi::ERR_NOMEM,
                };
                self.threads[tid.0 as usize].regs.set(Reg::V0, result);
            }
            abi::SYS_TAS => {
                self.stats.emulation_traps += 1;
                self.record(Event::EmulatedTas {
                    thread: tid,
                    addr: a0,
                });
                let body = u64::from(self.machine.profile().cost().kernel_emul_body);
                self.charge_kernel(body);
                // Interrupts are disabled in the kernel, so the
                // read-modify-write below is atomic by construction (§2.3).
                let old = self.machine.mem().load_kernel(a0).unwrap_or(0);
                let _ = self.machine.mem_mut().store_kernel(a0, 1);
                // The trap site (the syscall instruction) is one behind
                // the saved PC.
                let trap_pc = self.threads[tid.0 as usize].regs.pc().wrapping_sub(1);
                self.machine.log_kernel_rmw(trap_pc, a0, old);
                self.emit(ObsEvent::LockAttempt {
                    thread: tid.0,
                    addr: a0,
                    acquired: old == 0,
                });
                self.threads[tid.0 as usize].regs.set(Reg::V0, old);
            }
            abi::SYS_RAS_REGISTER => {
                let result = match &mut self.strategy {
                    Strategy::Registered { range } => {
                        // One sequence per address space (§3.1); a new
                        // registration replaces the old.
                        *range = Some((a0, a1));
                        self.stats.registrations += 1;
                        0
                    }
                    _ => {
                        self.stats.registrations_refused += 1;
                        abi::ERR_UNSUPPORTED
                    }
                };
                if result == 0 {
                    self.emit(ObsEvent::SeqRegister {
                        thread: tid.0,
                        start: a0,
                        len: a1,
                    });
                }
                self.threads[tid.0 as usize].regs.set(Reg::V0, result);
            }
            abi::SYS_RSEQ => {
                let result = if !matches!(self.strategy, Strategy::Rseq) {
                    self.stats.registrations_refused += 1;
                    abi::ERR_UNSUPPORTED
                } else if a1 & abi::RSEQ_UNREGISTER != 0 {
                    match self.threads[tid.0 as usize].rseq_area.take() {
                        Some(_) => 0,
                        None => abi::ERR_BUSY,
                    }
                } else if self.threads[tid.0 as usize].rseq_area.is_some() {
                    // Linux returns EBUSY on a second registration; one
                    // area word per thread.
                    abi::ERR_BUSY
                } else {
                    self.threads[tid.0 as usize].rseq_area = Some(a0);
                    self.stats.rseq_registrations += 1;
                    self.emit(ObsEvent::RseqRegister {
                        thread: tid.0,
                        area: a0,
                    });
                    0
                };
                self.threads[tid.0 as usize].regs.set(Reg::V0, result);
            }
            abi::SYS_WAIT => {
                let val = self.machine.mem().load_kernel(a0).unwrap_or(!a1);
                if val == a1 {
                    self.stats.blocks += 1;
                    self.record(Event::Block { thread: tid });
                    if self.observing() {
                        let inside = self.pc_inside_sequence(tid);
                        self.emit(ObsEvent::SwitchOut {
                            thread: tid.0,
                            reason: SwitchReason::Block,
                            inside_sequence: inside,
                        });
                    }
                    self.threads[tid.0 as usize].regs.set(Reg::V0, 0);
                    self.suspend(tid);
                    self.threads[tid.0 as usize].state = ThreadState::Blocked { addr: a0 };
                    self.waiters.park(&mut self.threads, a0, tid);
                    self.current = None;
                } else {
                    self.threads[tid.0 as usize].regs.set(Reg::V0, 1);
                }
            }
            abi::SYS_WAKE => {
                // Wake in place, walking the address's bucket chain from
                // the front: entries blocked on a hash-colliding address
                // are skipped, so per-address FIFO order is exactly what
                // the per-address queues produced — with no scratch Vec
                // and no hash-map traffic.
                let mut woken = 0u32;
                let bucket = self.waiters.bucket_of(a0);
                let mut cur = self.waiters.head(bucket);
                while woken < a1 && cur != NIL {
                    let w = ThreadId(cur);
                    cur = self.threads[cur as usize].link_next;
                    if self.threads[w.0 as usize].state != (ThreadState::Blocked { addr: a0 }) {
                        continue;
                    }
                    self.waiters.unpark(bucket, &mut self.threads, w);
                    self.threads[w.0 as usize].state = ThreadState::Ready;
                    self.ready.push_back(&mut self.threads, w);
                    self.stats.wakeups += 1;
                    woken += 1;
                    self.record(Event::Wake { thread: w });
                    self.emit(ObsEvent::Wake { thread: w.0 });
                }
                self.threads[tid.0 as usize].regs.set(Reg::V0, woken);
            }
            abi::SYS_CLOCK => {
                let now = self.machine.clock() as u32;
                self.threads[tid.0 as usize].regs.set(Reg::V0, now);
            }
            abi::SYS_PRINT => {
                self.output.push(a0);
            }
            abi::SYS_SLEEP => {
                self.stats.sleeps += 1;
                let until = self.machine.clock().saturating_add(u64::from(a0));
                self.record(Event::Sleep { thread: tid, until });
                if self.observing() {
                    let inside = self.pc_inside_sequence(tid);
                    self.emit(ObsEvent::SwitchOut {
                        thread: tid.0,
                        reason: SwitchReason::Sleep,
                        inside_sequence: inside,
                    });
                }
                self.threads[tid.0 as usize].regs.set(Reg::V0, 0);
                self.suspend(tid);
                self.threads[tid.0 as usize].state = ThreadState::Sleeping { until };
                self.sleepers.push(std::cmp::Reverse((until, tid)));
                self.stats.blocks += 1;
                self.current = None;
            }
            abi::SYS_JOIN => {
                let target = ThreadId(a0);
                let result = match self.threads.get(a0 as usize) {
                    None => Some(abi::ERR_NO_THREAD),
                    Some(t) if t.is_exited() => Some(0),
                    Some(_) => None,
                };
                match result {
                    Some(v) => self.threads[tid.0 as usize].regs.set(Reg::V0, v),
                    None => {
                        self.stats.blocks += 1;
                        self.record(Event::Block { thread: tid });
                        if self.observing() {
                            let inside = self.pc_inside_sequence(tid);
                            self.emit(ObsEvent::SwitchOut {
                                thread: tid.0,
                                reason: SwitchReason::Block,
                                inside_sequence: inside,
                            });
                        }
                        self.threads[tid.0 as usize].regs.set(Reg::V0, 0);
                        self.suspend(tid);
                        self.threads[tid.0 as usize].state = ThreadState::Joining { target };
                        join_push(&mut self.threads, target, tid);
                        self.current = None;
                    }
                }
            }
            _ => {
                self.threads[tid.0 as usize]
                    .regs
                    .set(Reg::V0, abi::ERR_UNSUPPORTED);
            }
        }
        // A kernel-emulated Test-And-Set logged its RMW above; drain it
        // (and any user accesses from the slice) while `tid` is still the
        // thread that performed them — after a preemption the attribution
        // would be lost.
        self.drain_telemetry(tid);
        // Interrupts were disabled during the trap; a timer tick that
        // landed in the meantime is delivered on the way back to user
        // level. This is exactly the §5.3 effect: under kernel emulation a
        // preemption can land immediately after a Test-And-Set trap, while
        // the lock is held, inflating the critical section.
        if self.current == Some(tid) && self.machine.clock() >= self.slice_deadline {
            self.timer_preempt(tid);
        }
    }

    /// Enables the machine's shared-memory access log (see
    /// [`ras_machine::Machine::enable_access_log`]). The model checker's
    /// race sanitizer drains it after every step.
    pub fn enable_access_log(&mut self) {
        self.machine.enable_access_log();
    }

    /// Restricts the machine's access log to `addrs` (see
    /// [`ras_machine::Machine::set_access_watch`]).
    pub fn set_access_watch(&mut self, addrs: &[u32]) {
        self.machine.set_access_watch(addrs);
    }

    /// Drains the machine's access log.
    pub fn take_accesses(&mut self) -> Vec<ras_machine::MemAccess> {
        self.machine.take_accesses()
    }

    /// Visits and clears the machine's access log without reallocating
    /// (see [`ras_machine::Machine::drain_accesses`]).
    pub fn drain_accesses(&mut self, f: impl FnMut(&ras_machine::MemAccess)) {
        self.machine.drain_accesses(f);
    }

    // --- checkpoint/restore -------------------------------------------------

    /// Enables cheap checkpoint/restore: turns on the machine's dirty
    /// tracking (undo log + incremental fingerprint) over the shared data
    /// image (`[0, data_end)`). Stores above `data_end` (thread stacks)
    /// are still undone on restore; only the fingerprint is scoped to the
    /// shared data, matching what the model checker's state hash covers.
    ///
    /// Dirty tracking routes execution through the machine's instrumented
    /// loop; the fast loop stays untouched for kernels that never call
    /// this.
    pub fn enable_checkpoints(&mut self) {
        let limit = self.data_end;
        self.machine.mem_mut().enable_dirty(limit);
    }

    /// Whether [`Kernel::enable_checkpoints`] was called.
    pub fn checkpoints_enabled(&self) -> bool {
        self.machine.mem().dirty_enabled()
    }

    /// The running incremental fingerprint of the shared data image, if
    /// checkpoints are enabled. Identical, by construction, to
    /// `self.machine().mem().fingerprint_scan(self.data_end())`.
    pub fn memory_fingerprint(&self) -> Option<u64> {
        self.machine.mem().fingerprint()
    }

    /// Takes a checkpoint. O(threads + queue entries); guest memory is
    /// covered by the undo-log mark inside, not copied.
    ///
    /// # Panics
    ///
    /// Panics unless [`Kernel::enable_checkpoints`] was called.
    pub fn checkpoint(&self) -> Checkpoint {
        let mut waiters = WaitCheckpoint::default();
        self.waiters.checkpoint_into(&mut waiters);
        Checkpoint {
            machine: self.machine.checkpoint(),
            threads: self.threads.clone(),
            ready: self.ready,
            current: self.current,
            last_running: self.last_running,
            registered_range: match &self.strategy {
                Strategy::Registered { range } => *range,
                _ => None,
            },
            policy: self.policy.clone(),
            slice_deadline: self.slice_deadline,
            waiters,
            sleepers: self.sleepers.clone(),
            stats: self.stats,
            output_len: self.output.len(),
            live: self.live,
            page_fifo: self.page_fifo.clone(),
            pending_fault: self.pending_fault,
        }
    }

    /// [`Kernel::checkpoint`] into an existing checkpoint, reusing its
    /// buffers (TCB vector, queues, waiter maps). Semantically identical
    /// to `*cp = self.checkpoint()`; callers taking a checkpoint per
    /// explored branch recycle a scratch per tree depth so the steady
    /// state allocates nothing.
    pub fn checkpoint_into(&self, cp: &mut Checkpoint) {
        cp.machine = self.machine.checkpoint();
        cp.threads.clone_from(&self.threads);
        cp.ready = self.ready;
        cp.current = self.current;
        cp.last_running = self.last_running;
        cp.registered_range = match &self.strategy {
            Strategy::Registered { range } => *range,
            _ => None,
        };
        cp.policy.clone_from(&self.policy);
        cp.slice_deadline = self.slice_deadline;
        self.waiters.checkpoint_into(&mut cp.waiters);
        cp.sleepers.clone_from(&self.sleepers);
        cp.stats = self.stats;
        cp.output_len = self.output.len();
        cp.live = self.live;
        cp.page_fifo.clone_from(&self.page_fifo);
        cp.pending_fault = self.pending_fault;
    }

    /// Rewinds to a checkpoint taken on this kernel: memory via the undo
    /// log, everything else by value. Returns the number of undo entries
    /// replayed. The checkpoint may be restored repeatedly, and
    /// checkpoints nest — restoring an outer checkpoint after an inner
    /// one is taken simply rewinds further.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken on a different kernel or this
    /// kernel has already been rewound past it.
    pub fn restore(&mut self, cp: &Checkpoint) -> u64 {
        let replayed = self.machine.restore(&cp.machine);
        self.threads.clone_from(&cp.threads);
        self.ready = cp.ready;
        self.current = cp.current;
        self.last_running = cp.last_running;
        if let Strategy::Registered { range } = &mut self.strategy {
            *range = cp.registered_range;
        }
        self.policy.clone_from(&cp.policy);
        self.slice_deadline = cp.slice_deadline;
        self.waiters.restore(&cp.waiters);
        self.sleepers.clone_from(&cp.sleepers);
        self.stats = cp.stats;
        self.output.truncate(cp.output_len);
        self.live = cp.live;
        self.page_fifo.clone_from(&cp.page_fifo);
        self.pending_fault = cp.pending_fault;
        replayed
    }

    // --- oracle-mode stepping ----------------------------------------------

    /// Advances the system by exactly one scheduling event: a dispatch
    /// (no instruction executes) or one retired instruction (a syscall is
    /// handled to completion as part of its instruction).
    ///
    /// The preemption timer is neutralized — in oracle mode the caller is
    /// the only source of preemptions, via [`Kernel::preempt_current`].
    /// All other kernel behavior (strategy checks, rollbacks, syscalls,
    /// paging) is identical to [`Kernel::run`].
    ///
    /// Oracle stepping always runs the exact interpreter regardless of
    /// the configured engine: observing the machine between individual
    /// instructions is precisely the deopt contract's "observable
    /// semantics" case, so instruction-granular stepping is a standing
    /// deoptimization point. Since the engines are architecturally
    /// indistinguishable, every result derived here (model-checking
    /// verdicts included) is engine-independent by construction.
    pub fn step_once(&mut self) -> StepOutcome {
        self.slice_deadline = u64::MAX;
        if let Some((thread, fault)) = self.pending_fault.take() {
            return StepOutcome::Fault { thread, fault };
        }
        // Deliver due wake-ups from the sleep queue.
        while let Some(&std::cmp::Reverse((until, tid))) = self.sleepers.peek() {
            if until > self.machine.clock() {
                break;
            }
            self.sleepers.pop();
            if matches!(
                self.threads[tid.0 as usize].state,
                ThreadState::Sleeping { .. }
            ) {
                self.threads[tid.0 as usize].state = ThreadState::Ready;
                self.ready.push_back(&mut self.threads, tid);
                self.stats.wakeups += 1;
                self.record(Event::Wake { thread: tid });
                self.emit(ObsEvent::Wake { thread: tid.0 });
            }
        }
        let Some(tid) = self.current else {
            let Some(next) = self.ready.pop_front(&mut self.threads) else {
                if self.live == 0 {
                    return StepOutcome::Completed;
                }
                if let Some(&std::cmp::Reverse((until, _))) = self.sleepers.peek() {
                    let now = self.machine.clock();
                    if until > now {
                        self.machine.charge(until - now);
                        self.stats.idle_cycles += until - now;
                        self.emit(ObsEvent::Idle {
                            cycles: until - now,
                        });
                    }
                    return StepOutcome::Idled;
                }
                let blocked = self
                    .threads
                    .iter()
                    .filter(|t| {
                        matches!(
                            t.state,
                            ThreadState::Blocked { .. } | ThreadState::Joining { .. }
                        )
                    })
                    .map(|t| t.id)
                    .collect();
                return StepOutcome::Deadlock { blocked };
            };
            self.dispatch(next);
            // dispatch() re-arms the timer; keep it disarmed.
            self.slice_deadline = u64::MAX;
            return StepOutcome::Ran { thread: next };
        };
        // Execute exactly one instruction of the current thread.
        self.machine.poll_atomic_expiry();
        let before = self.machine.clock();
        let exit = {
            let Kernel {
                machine,
                decoded,
                threads,
                ..
            } = self;
            machine.step(decoded, &mut threads[tid.0 as usize].regs)
        };
        self.threads[tid.0 as usize].user_cycles += self.machine.clock() - before;
        self.drain_telemetry(tid);
        match exit {
            // A retired instruction, or (unreachably) a budget stop —
            // `Machine::step` has no deadline to exhaust.
            None | Some(Exit::Budget) => StepOutcome::Ran { thread: tid },
            Some(Exit::Syscall) => {
                // slice_deadline is u64::MAX, so the end-of-syscall timer
                // check in handle_syscall never fires here.
                self.handle_syscall(tid);
                StepOutcome::Ran { thread: tid }
            }
            Some(Exit::Halt) => StepOutcome::Halted { thread: tid },
            Some(Exit::Fault(Fault::PageFault { addr, .. })) => {
                self.handle_page_fault(tid, addr);
                StepOutcome::Ran { thread: tid }
            }
            Some(Exit::Fault(fault)) => StepOutcome::Fault { thread: tid, fault },
        }
    }

    /// Preempts the currently running thread exactly as a timer tick
    /// would: the strategy check runs (rolling back or redirecting a
    /// thread caught inside an atomic sequence) and the thread goes to
    /// the back of the ready queue. Returns `false` if nothing is
    /// running.
    pub fn preempt_current(&mut self) -> bool {
        let Some(tid) = self.current else {
            return false;
        };
        self.timer_preempt(tid);
        true
    }

    /// Moves a ready thread to the front of the ready queue so the next
    /// dispatch picks it. Returns `false` if a thread is currently
    /// running or `tid` is not on the ready queue.
    ///
    /// O(1): a thread is on the ready queue exactly when its state is
    /// [`ThreadState::Ready`], and the intrusive links make the targeted
    /// removal a pointer splice — the explorer calls this once per
    /// scheduling decision, so the former O(ready) scan was a per-node
    /// cost.
    pub fn schedule_next(&mut self, tid: ThreadId) -> bool {
        if self.current.is_some() {
            return false;
        }
        if !self.threads.get(tid.0 as usize).is_some_and(Tcb::is_ready) {
            return false;
        }
        self.ready.unlink(&mut self.threads, tid);
        self.ready.push_front(&mut self.threads, tid);
        true
    }

    // --- main loop -----------------------------------------------------------

    /// Runs the system for at most `fuel` cycles.
    ///
    /// Returns [`Outcome::OutOfFuel`] if the budget runs out; the kernel is
    /// left in a consistent state and `run` may be called again.
    pub fn run(&mut self, fuel: u64) -> Outcome {
        let limit = self.machine.clock().saturating_add(fuel);
        loop {
            if let Some((thread, fault)) = self.pending_fault.take() {
                return Outcome::Fault { thread, fault };
            }
            // Deliver due wake-ups from the sleep queue.
            while let Some(&std::cmp::Reverse((until, tid))) = self.sleepers.peek() {
                if until > self.machine.clock() {
                    break;
                }
                self.sleepers.pop();
                if matches!(
                    self.threads[tid.0 as usize].state,
                    ThreadState::Sleeping { .. }
                ) {
                    self.threads[tid.0 as usize].state = ThreadState::Ready;
                    self.ready.push_back(&mut self.threads, tid);
                    self.stats.wakeups += 1;
                    self.record(Event::Wake { thread: tid });
                }
            }
            let tid = match self.current {
                Some(t) => t,
                None => {
                    let Some(next) = self.ready.pop_front(&mut self.threads) else {
                        if self.live == 0 {
                            return Outcome::Completed;
                        }
                        // Nothing runnable: if threads are sleeping, the
                        // processor idles until the earliest wake-up.
                        if let Some(&std::cmp::Reverse((until, _))) = self.sleepers.peek() {
                            let now = self.machine.clock();
                            if until > now {
                                self.machine.charge(until - now);
                                self.stats.idle_cycles += until - now;
                                self.emit(ObsEvent::Idle {
                                    cycles: until - now,
                                });
                            }
                            continue;
                        }
                        let blocked = self
                            .threads
                            .iter()
                            .filter(|t| {
                                matches!(
                                    t.state,
                                    ThreadState::Blocked { .. } | ThreadState::Joining { .. }
                                )
                            })
                            .map(|t| t.id)
                            .collect();
                        return Outcome::Deadlock { blocked };
                    };
                    self.dispatch(next);
                    next
                }
            };
            if self.machine.clock() >= limit {
                return Outcome::OutOfFuel;
            }
            let deadline = self.slice_deadline.min(limit);
            let exit = {
                let Kernel {
                    machine,
                    decoded,
                    threads,
                    translation,
                    ..
                } = self;
                let before = machine.clock();
                let regs = &mut threads[tid.0 as usize].regs;
                let exit = match translation {
                    Some(cache) => machine.run_translated(decoded, cache, regs, deadline),
                    None => machine.run(decoded, regs, deadline),
                };
                threads[tid.0 as usize].user_cycles += machine.clock() - before;
                exit
            };
            // Scheduling boundary: fold the slice's watched accesses into
            // the telemetry aggregate before the exit can switch threads.
            self.drain_telemetry(tid);
            match exit {
                Exit::Budget => {
                    if self.machine.clock() >= limit && limit < self.slice_deadline {
                        return Outcome::OutOfFuel;
                    }
                    self.timer_preempt(tid);
                }
                Exit::Syscall => self.handle_syscall(tid),
                Exit::Halt => return Outcome::Halted,
                Exit::Fault(Fault::PageFault { addr, .. }) => self.handle_page_fault(tid, addr),
                Exit::Fault(fault) => {
                    return Outcome::Fault { thread: tid, fault };
                }
            }
        }
    }
}
