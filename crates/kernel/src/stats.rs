use std::fmt;

/// Event counters maintained by the kernel.
///
/// These are the quantities Table 3 of the paper reports per application:
/// emulation traps, restartable-sequence restarts, and thread suspensions —
/// plus finer-grained counters used by the ablation benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Timer-driven involuntary preemptions of a running thread.
    pub preemptions: u64,
    /// Voluntary processor relinquishments (`yield`).
    pub yields: u64,
    /// Threads blocked on a wait queue (futex wait or join).
    pub blocks: u64,
    /// Threads moved from blocked to ready.
    pub wakeups: u64,
    /// Page faults serviced.
    pub page_faults: u64,
    /// Pages evicted by the FIFO policy.
    pub page_evictions: u64,
    /// Total thread suspensions: preemptions + yields + blocks + faults.
    /// This is the "Thread Suspensions" column of Table 3 — every one of
    /// these paid the strategy's PC-check cost.
    pub suspensions: u64,
    /// Context switches (dispatches that changed the running thread).
    pub context_switches: u64,
    /// All system calls handled.
    pub syscalls: u64,
    /// Kernel-emulated atomic operations (`SYS_TAS`) — the "Emulation
    /// Traps" column of Table 3.
    pub emulation_traps: u64,
    /// PC checks performed at suspension or resume.
    pub ras_checks: u64,
    /// Sequences actually rolled back — the "Restarts" column of Table 3.
    pub ras_restarts: u64,
    /// Designated-sequence stage-1 probes that passed (eligible opcode).
    pub designated_stage1_hits: u64,
    /// Stage-2 checks that rejected a lookalike (false alarms, §3.2).
    pub designated_false_alarms: u64,
    /// Successful explicit registrations.
    pub registrations: u64,
    /// Registration attempts rejected because the kernel lacks support.
    pub registrations_refused: u64,
    /// Threads redirected through the user-level recovery routine (§4.1).
    pub user_restart_redirects: u64,
    /// Successful rseq area registrations (`SYS_RSEQ`).
    pub rseq_registrations: u64,
    /// rseq descriptor checks performed at preemption time.
    pub rseq_checks: u64,
    /// Preemptions that landed inside a published rseq window and were
    /// redirected to the descriptor's abort handler.
    pub rseq_aborts: u64,
    /// Threads created.
    pub threads_spawned: u64,
    /// Cycles spent in kernel paths (traps, checks, switches, emulation).
    pub kernel_cycles: u64,
    /// Cycles the processor sat idle with every thread blocked or asleep.
    pub idle_cycles: u64,
    /// `SYS_SLEEP` calls handled.
    pub sleeps: u64,
}

impl KernelStats {
    /// Creates zeroed counters.
    pub fn new() -> KernelStats {
        KernelStats::default()
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel statistics:")?;
        writeln!(f, "  suspensions        {:>10}", self.suspensions)?;
        writeln!(f, "    preemptions      {:>10}", self.preemptions)?;
        writeln!(f, "    yields           {:>10}", self.yields)?;
        writeln!(f, "    blocks           {:>10}", self.blocks)?;
        writeln!(f, "    page faults      {:>10}", self.page_faults)?;
        writeln!(f, "  context switches   {:>10}", self.context_switches)?;
        writeln!(f, "  syscalls           {:>10}", self.syscalls)?;
        writeln!(f, "  emulation traps    {:>10}", self.emulation_traps)?;
        writeln!(f, "  ras checks         {:>10}", self.ras_checks)?;
        writeln!(f, "  ras restarts       {:>10}", self.ras_restarts)?;
        writeln!(
            f,
            "  stage-1 hits       {:>10}",
            self.designated_stage1_hits
        )?;
        writeln!(
            f,
            "  false alarms       {:>10}",
            self.designated_false_alarms
        )?;
        writeln!(f, "  rseq checks        {:>10}", self.rseq_checks)?;
        writeln!(f, "  rseq aborts        {:>10}", self.rseq_aborts)?;
        writeln!(f, "  threads spawned    {:>10}", self.threads_spawned)?;
        write!(f, "  kernel cycles      {:>10}", self.kernel_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = KernelStats::new();
        assert_eq!(s.preemptions, 0);
        assert_eq!(s.suspensions, 0);
        assert_eq!(s, KernelStats::default());
    }

    #[test]
    fn display_is_nonempty_and_mentions_key_counters() {
        let mut s = KernelStats::new();
        s.emulation_traps = 42;
        let text = s.to_string();
        assert!(text.contains("emulation traps"));
        assert!(text.contains("42"));
        assert!(text.contains("ras restarts"));
    }
}
