//! The simulated uniprocessor kernel: threads, preemptive round-robin
//! scheduling, futex-style wait queues, demand paging, system calls — and
//! the restartable-atomic-sequence machinery of *Fast Mutual Exclusion for
//! Uniprocessors* (Bershad, Redell & Ellis, ASPLOS 1992).
//!
//! The kernel supports six atomicity strategies (see [`StrategyKind`]):
//! none, Mach-style explicit registration, Taos-style designated sequences,
//! user-level detection and restart, the i860 hardware restart bit, and
//! Linux-`rseq`-style abort handlers. It also always offers
//! kernel-emulated Test-And-Set via [`ras_isa::abi::SYS_TAS`], the paper's
//! pessimistic baseline.
//!
//! Everything is deterministic given the configuration: same program, same
//! quantum, same seed — same cycle-exact execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod oracle;
mod runq;
mod sched;
mod stats;
mod strategy;
mod tcb;
mod timeline;

pub use crate::kernel::{BootError, Checkpoint, Kernel, KernelConfig, Outcome, StepOutcome};
pub use crate::oracle::{run_with_scheduler, Decision, OracleOutcome, Scheduler};
pub use crate::sched::PreemptionPolicy;
pub use crate::stats::KernelStats;
pub use crate::strategy::{CheckTime, DesignatedSet, SequenceTemplate, Strategy, StrategyKind};
pub use crate::tcb::{Tcb, ThreadId, ThreadState};
pub use crate::timeline::{Event, TimedEvent};
