//! An optional event timeline: a timestamped record of every scheduling
//! and recovery decision the kernel makes, for debugging guest programs
//! and for tests that assert on *when* things happened, not just how
//! often.

use ras_isa::{CodeAddr, DataAddr};

use crate::ThreadId;

/// One kernel event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A synthetic marker emitted when the timeline is enabled, carrying
    /// the number of threads that already existed. The kernel spawns the
    /// main thread during `boot`, before any caller can enable the
    /// timeline, so without this marker those initial threads would be
    /// silently invisible to timeline consumers.
    Boot {
        /// Threads alive when the timeline was enabled.
        threads: u32,
    },
    /// A thread was created.
    Spawn {
        /// The new thread.
        thread: ThreadId,
    },
    /// A thread was given the processor.
    Dispatch {
        /// The thread.
        thread: ThreadId,
    },
    /// The timer preempted the running thread.
    Preempt {
        /// The thread.
        thread: ThreadId,
    },
    /// The thread yielded voluntarily.
    Yield {
        /// The thread.
        thread: ThreadId,
    },
    /// The thread blocked on a futex address or a join.
    Block {
        /// The thread.
        thread: ThreadId,
    },
    /// A blocked or sleeping thread became ready.
    Wake {
        /// The thread.
        thread: ThreadId,
    },
    /// The thread went to sleep until an absolute deadline.
    Sleep {
        /// The thread.
        thread: ThreadId,
        /// Wake-up time in cycles.
        until: u64,
    },
    /// The thread exited.
    Exit {
        /// The thread.
        thread: ThreadId,
    },
    /// A restartable atomic sequence was rolled back.
    Restart {
        /// The suspended thread.
        thread: ThreadId,
        /// PC at suspension.
        from: CodeAddr,
        /// Sequence start it was rolled back to.
        to: CodeAddr,
    },
    /// A preemption inside a published rseq critical section redirected
    /// the thread to its descriptor's abort handler.
    RseqAbort {
        /// The aborted thread.
        thread: ThreadId,
        /// PC at preemption.
        from: CodeAddr,
        /// The abort handler it was redirected to.
        abort_ip: CodeAddr,
    },
    /// The thread was redirected through the user-level recovery routine.
    UserRedirect {
        /// The thread.
        thread: ThreadId,
    },
    /// A page fault was serviced.
    PageFault {
        /// The faulting thread.
        thread: ThreadId,
        /// Faulting byte address.
        addr: DataAddr,
    },
    /// A kernel-emulated Test-And-Set trap.
    EmulatedTas {
        /// The calling thread.
        thread: ThreadId,
        /// The lock word.
        addr: DataAddr,
    },
}

/// An event with the machine clock at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Machine cycles at the event.
    pub clock: u64,
    /// What happened.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare_and_debug() {
        let a = TimedEvent {
            clock: 5,
            event: Event::Dispatch {
                thread: ThreadId(1),
            },
        };
        let b = a;
        assert_eq!(a, b);
        let text = format!("{a:?}");
        assert!(text.contains("Dispatch"));
        assert!(text.contains('5'));
    }

    #[test]
    fn restart_event_carries_both_pcs() {
        let e = Event::Restart {
            thread: ThreadId(2),
            from: 14,
            to: 10,
        };
        match e {
            Event::Restart { from, to, .. } => {
                assert!(from > to, "rollback goes backwards");
            }
            _ => unreachable!(),
        }
    }
}
