//! Intrusive scheduling queues: O(1) FIFO structures whose links live
//! inside the TCB array instead of in heap-allocated containers.
//!
//! The kernel's scheduling states are mutually exclusive — a thread is
//! on the ready queue, *or* parked in a wait bucket, *or* chained on a
//! join target, never two at once — so a single `link_next`/`link_prev`
//! pair per [`Tcb`] threads every queue. A queue itself is then twelve
//! bytes of header (`head`, `tail`, `len`), enqueue/dequeue/targeted
//! removal are pointer splices, and checkpointing a queue is a flat
//! copy of the header: the chain structure rides along with the TCB
//! slab the checkpoint already captures.
//!
//! The waiter table is a fixed-size futex-style bucket array keyed by a
//! multiplicative hash of the lock word. Threads hash-colliding into
//! the same bucket share one chain in block order; a wake walks the
//! chain from the head and skips entries blocked on a different
//! address, which preserves the per-address FIFO the old
//! `HashMap<DataAddr, VecDeque>` table provided — block order within a
//! bucket is a superset order of block order per address.

use ras_isa::DataAddr;

use crate::tcb::{Tcb, ThreadId};

/// Null link: the thread is not chained anywhere.
pub(crate) const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked FIFO threaded through the TCB slab.
///
/// Twelve bytes, `Copy`: checkpointing the queue is a field copy. The
/// chain itself lives in the TCBs' `link_next`/`link_prev` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IntrusiveQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl IntrusiveQueue {
    /// The empty queue.
    pub(crate) const EMPTY: IntrusiveQueue = IntrusiveQueue {
        head: NIL,
        tail: NIL,
        len: 0,
    };

    /// Number of chained threads (maintained counter, O(1)).
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// First chained thread's index, or [`NIL`].
    pub(crate) fn head(&self) -> u32 {
        self.head
    }

    /// Appends `id`, which must not currently be chained anywhere.
    pub(crate) fn push_back(&mut self, threads: &mut [Tcb], id: ThreadId) {
        let i = id.0;
        let t = &mut threads[i as usize];
        debug_assert!(t.link_next == NIL && t.link_prev == NIL, "already chained");
        t.link_next = NIL;
        t.link_prev = self.tail;
        if self.tail == NIL {
            self.head = i;
        } else {
            threads[self.tail as usize].link_next = i;
        }
        self.tail = i;
        self.len += 1;
    }

    /// Prepends `id`, which must not currently be chained anywhere.
    pub(crate) fn push_front(&mut self, threads: &mut [Tcb], id: ThreadId) {
        let i = id.0;
        let t = &mut threads[i as usize];
        debug_assert!(t.link_next == NIL && t.link_prev == NIL, "already chained");
        t.link_prev = NIL;
        t.link_next = self.head;
        if self.head == NIL {
            self.tail = i;
        } else {
            threads[self.head as usize].link_prev = i;
        }
        self.head = i;
        self.len += 1;
    }

    /// Removes and returns the first chained thread.
    pub(crate) fn pop_front(&mut self, threads: &mut [Tcb]) -> Option<ThreadId> {
        if self.head == NIL {
            return None;
        }
        let id = ThreadId(self.head);
        self.unlink(threads, id);
        Some(id)
    }

    /// Unlinks `id` from anywhere in the chain — O(1), the operation the
    /// old `VecDeque` ready queue paid an O(n) scan for.
    pub(crate) fn unlink(&mut self, threads: &mut [Tcb], id: ThreadId) {
        let i = id.0 as usize;
        let (prev, next) = (threads[i].link_prev, threads[i].link_next);
        if prev == NIL {
            debug_assert_eq!(self.head, id.0, "unlink from a queue not holding it");
            self.head = next;
        } else {
            threads[prev as usize].link_next = next;
        }
        if next == NIL {
            debug_assert_eq!(self.tail, id.0, "unlink from a queue not holding it");
            self.tail = prev;
        } else {
            threads[next as usize].link_prev = prev;
        }
        threads[i].link_next = NIL;
        threads[i].link_prev = NIL;
        self.len -= 1;
    }

    /// Iterates the chain front (next to dispatch) first.
    pub(crate) fn iter<'a>(&self, threads: &'a [Tcb]) -> impl Iterator<Item = ThreadId> + 'a {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let id = ThreadId(cur);
            cur = threads[cur as usize].link_next;
            Some(id)
        })
    }
}

/// Appends `id` to the chain of threads joining `target`, anchored at
/// `target`'s TCB (`joiners_head`/`joiners_tail`) and linked through
/// the same `link_next`/`link_prev` pair as every other chain — a
/// `Joining` thread is on no other queue.
pub(crate) fn join_push(threads: &mut [Tcb], target: ThreadId, id: ThreadId) {
    let i = id.0;
    debug_assert!(
        threads[i as usize].link_next == NIL && threads[i as usize].link_prev == NIL,
        "already chained"
    );
    let tail = threads[target.0 as usize].joiners_tail;
    threads[i as usize].link_next = NIL;
    threads[i as usize].link_prev = tail;
    if tail == NIL {
        threads[target.0 as usize].joiners_head = i;
    } else {
        threads[tail as usize].link_next = i;
    }
    threads[target.0 as usize].joiners_tail = i;
}

/// Futex-style waiter table: a fixed power-of-two array of intrusive
/// chains keyed by a multiplicative hash of the lock word. `SYS_WAIT`
/// and `SYS_WAKE` touch one bucket header and a handful of TCB links —
/// no hashing-table allocation, no per-wake scratch vector — and the
/// total waiter count is a maintained counter.
#[derive(Debug, Clone)]
pub(crate) struct WaitBuckets {
    buckets: Vec<IntrusiveQueue>,
    /// `32 - log2(buckets.len())`, for the multiplicative hash.
    shift: u32,
    waiting: u32,
}

/// Fibonacci-hashing multiplier (2^32 / φ, odd).
const GOLDEN: u32 = 0x9E37_79B9;

impl WaitBuckets {
    /// Sizes the table for `max_threads` waiters: one bucket per
    /// potential waiter, clamped to `[16, 1024]` and rounded up to a
    /// power of two.
    pub(crate) fn new(max_threads: usize) -> WaitBuckets {
        let n = max_threads.next_power_of_two().clamp(16, 1024);
        WaitBuckets {
            buckets: vec![IntrusiveQueue::EMPTY; n],
            shift: 32 - n.trailing_zeros(),
            waiting: 0,
        }
    }

    /// The bucket index a lock word hashes to.
    pub(crate) fn bucket_of(&self, addr: DataAddr) -> usize {
        (addr.wrapping_mul(GOLDEN) >> self.shift) as usize
    }

    /// First thread chained in `bucket`, or [`NIL`].
    pub(crate) fn head(&self, bucket: usize) -> u32 {
        self.buckets[bucket].head()
    }

    /// Parks `id` at the tail of its address's bucket.
    pub(crate) fn park(&mut self, threads: &mut [Tcb], addr: DataAddr, id: ThreadId) {
        let b = self.bucket_of(addr);
        self.buckets[b].push_back(threads, id);
        self.waiting += 1;
    }

    /// Unlinks `id` from `bucket` (it must be chained there).
    pub(crate) fn unpark(&mut self, bucket: usize, threads: &mut [Tcb], id: ThreadId) {
        self.buckets[bucket].unlink(threads, id);
        self.waiting -= 1;
    }

    /// Total parked threads across all buckets (maintained counter).
    pub(crate) fn waiting(&self) -> usize {
        self.waiting as usize
    }

    /// Captures the occupied bucket headers into `cp`, reusing its
    /// buffer. The chains themselves live in the TCB slab, which the
    /// kernel checkpoint copies anyway, so this plus the TCBs is the
    /// entire waiter state — nothing per-waiter is copied here.
    pub(crate) fn checkpoint_into(&self, cp: &mut WaitCheckpoint) {
        cp.occupied.clear();
        for (i, b) in self.buckets.iter().enumerate() {
            if b.len > 0 {
                cp.occupied.push((i as u32, *b));
            }
        }
        cp.waiting = self.waiting;
    }

    /// Rewinds to a capture taken on this table.
    pub(crate) fn restore(&mut self, cp: &WaitCheckpoint) {
        self.buckets.fill(IntrusiveQueue::EMPTY);
        for &(i, b) in &cp.occupied {
            self.buckets[i as usize] = b;
        }
        self.waiting = cp.waiting;
    }
}

/// The by-value part of a [`WaitBuckets`] checkpoint: occupied bucket
/// headers only. Empty in the common explorer state (no one blocked),
/// a few dozen bytes under contention.
#[derive(Debug, Clone, Default)]
pub(crate) struct WaitCheckpoint {
    occupied: Vec<(u32, IntrusiveQueue)>,
    waiting: u32,
}

impl WaitCheckpoint {
    /// Bytes this capture copies by value.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.occupied.len() * std::mem::size_of::<(u32, IntrusiveQueue)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_machine::RegFile;

    fn slab(n: u32) -> Vec<Tcb> {
        (0..n)
            .map(|i| Tcb::new(ThreadId(i), RegFile::new(0), 4096))
            .collect()
    }

    #[test]
    fn fifo_push_pop() {
        let mut t = slab(4);
        let mut q = IntrusiveQueue::EMPTY;
        for i in 0..4 {
            q.push_back(&mut t, ThreadId(i));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(
            q.iter(&t).collect::<Vec<_>>(),
            vec![ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)]
        );
        for i in 0..4 {
            assert_eq!(q.pop_front(&mut t), Some(ThreadId(i)));
        }
        assert_eq!(q.pop_front(&mut t), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn unlink_middle_and_ends() {
        let mut t = slab(5);
        let mut q = IntrusiveQueue::EMPTY;
        for i in 0..5 {
            q.push_back(&mut t, ThreadId(i));
        }
        q.unlink(&mut t, ThreadId(2));
        q.unlink(&mut t, ThreadId(0));
        q.unlink(&mut t, ThreadId(4));
        assert_eq!(
            q.iter(&t).collect::<Vec<_>>(),
            vec![ThreadId(1), ThreadId(3)]
        );
        // Unlinked threads are fully detached and re-queueable.
        q.push_front(&mut t, ThreadId(2));
        assert_eq!(
            q.iter(&t).collect::<Vec<_>>(),
            vec![ThreadId(2), ThreadId(1), ThreadId(3)]
        );
    }

    #[test]
    fn buckets_keep_per_address_fifo_and_counter() {
        let mut t = slab(6);
        let mut w = WaitBuckets::new(4);
        // Two addresses that may or may not collide; park interleaved.
        for (i, addr) in [(0, 64), (1, 128), (2, 64), (3, 128), (4, 64)] {
            w.park(&mut t, addr, ThreadId(i));
        }
        assert_eq!(w.waiting(), 5);
        // Walking bucket_of(64)'s chain and filtering to addr 64 yields
        // block order 0, 2, 4 regardless of collisions.
        let b = w.bucket_of(64);
        let mut order = Vec::new();
        let mut cur = w.head(b);
        while cur != NIL {
            order.push(cur);
            cur = t[cur as usize].link_next;
        }
        let parked_on_64: Vec<u32> = order
            .into_iter()
            .filter(|&i| [0, 2, 4].contains(&i))
            .collect();
        assert_eq!(parked_on_64, vec![0, 2, 4]);
        w.unpark(b, &mut t, ThreadId(2));
        assert_eq!(w.waiting(), 4);
    }

    /// The intrusive ready queue + futex bucket table, driven through
    /// random spawn/yield/block/wake/exit traces, stays operation-for-
    /// operation equivalent to the naive structures it replaced: a
    /// `VecDeque` ready queue and a `HashMap<DataAddr, VecDeque>` waiter
    /// map. The address set is chosen at runtime so that at least three
    /// addresses provably collide into one bucket — the wake-walk's
    /// skip-other-addresses path is always exercised.
    mod equivalence {
        use std::collections::{HashMap, VecDeque};

        use proptest::prelude::*;

        use super::super::*;
        use super::slab;

        #[derive(Debug, Clone, Copy)]
        enum Op {
            Spawn,
            Yield,
            Block(usize),
            Wake(usize, u32),
            Exit,
        }

        fn arb_op(addrs: usize) -> impl Strategy<Value = Op> {
            prop_oneof![
                Just(Op::Spawn),
                Just(Op::Yield),
                (0..addrs).prop_map(Op::Block),
                (0..addrs, 1u32..4).prop_map(|(a, n)| Op::Wake(a, n)),
                Just(Op::Exit),
            ]
        }

        /// Picks a colliding address set: three words aliasing one
        /// bucket of `table`, plus two from elsewhere.
        fn colliding_addrs(table: &WaitBuckets) -> Vec<DataAddr> {
            let mut by_bucket: HashMap<usize, Vec<DataAddr>> = HashMap::new();
            for addr in (64u32..8192).step_by(4) {
                let group = by_bucket.entry(table.bucket_of(addr)).or_default();
                group.push(addr);
                if group.len() == 3 {
                    let mut addrs = group.clone();
                    let home = table.bucket_of(addrs[0]);
                    addrs.extend(
                        (64u32..8192)
                            .step_by(4)
                            .filter(|&a| table.bucket_of(a) != home)
                            .take(2),
                    );
                    return addrs;
                }
            }
            panic!("no 3-way bucket collision under 8 KiB of words");
        }

        #[derive(Debug, Clone, Copy, PartialEq)]
        enum State {
            Free,
            Ready,
            Blocked(DataAddr),
            Retired,
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn intrusive_scheduler_matches_naive_reference(
                ops in prop::collection::vec(arb_op(5), 1..200),
            ) {
                const MAX: u32 = 32;
                let mut threads = slab(MAX);
                let mut ready = IntrusiveQueue::EMPTY;
                let mut waiters = WaitBuckets::new(16);
                let addrs = colliding_addrs(&waiters);
                prop_assert_eq!(
                    waiters.bucket_of(addrs[0]),
                    waiters.bucket_of(addrs[2]),
                    "first three addresses must collide"
                );

                let mut ref_ready: VecDeque<u32> = VecDeque::new();
                let mut ref_waiting: HashMap<DataAddr, VecDeque<u32>> = HashMap::new();
                let mut state = vec![State::Free; MAX as usize];
                let mut next = 0u32;

                for op in ops {
                    match op {
                        Op::Spawn => {
                            if next < MAX {
                                state[next as usize] = State::Ready;
                                ready.push_back(&mut threads, ThreadId(next));
                                ref_ready.push_back(next);
                                next += 1;
                            }
                        }
                        Op::Yield => {
                            if let Some(id) = ready.pop_front(&mut threads) {
                                ready.push_back(&mut threads, id);
                                let r = ref_ready.pop_front().unwrap();
                                prop_assert_eq!(r, id.0);
                                ref_ready.push_back(r);
                            }
                        }
                        Op::Block(a) => {
                            let addr = addrs[a];
                            if let Some(id) = ready.pop_front(&mut threads) {
                                waiters.park(&mut threads, addr, id);
                                state[id.0 as usize] = State::Blocked(addr);
                                let r = ref_ready.pop_front().unwrap();
                                prop_assert_eq!(r, id.0);
                                ref_waiting.entry(addr).or_default().push_back(r);
                            }
                        }
                        Op::Wake(a, n) => {
                            let addr = addrs[a];
                            // Subject: the kernel's in-place bucket walk.
                            let mut woken = 0;
                            let bucket = waiters.bucket_of(addr);
                            let mut cur = waiters.head(bucket);
                            while woken < n && cur != NIL {
                                let w = ThreadId(cur);
                                cur = threads[cur as usize].link_next;
                                if state[w.0 as usize] != State::Blocked(addr) {
                                    continue;
                                }
                                waiters.unpark(bucket, &mut threads, w);
                                state[w.0 as usize] = State::Ready;
                                ready.push_back(&mut threads, w);
                                woken += 1;
                            }
                            // Reference: pop the per-address FIFO.
                            let mut ref_woken = 0;
                            if let Some(q) = ref_waiting.get_mut(&addr) {
                                while ref_woken < n {
                                    let Some(r) = q.pop_front() else { break };
                                    ref_ready.push_back(r);
                                    ref_woken += 1;
                                }
                            }
                            prop_assert_eq!(ref_woken, woken);
                        }
                        Op::Exit => {
                            if let Some(id) = ready.pop_front(&mut threads) {
                                state[id.0 as usize] = State::Retired;
                                let r = ref_ready.pop_front().unwrap();
                                prop_assert_eq!(r, id.0);
                            }
                        }
                    }
                    // Full-structure equivalence after every operation.
                    prop_assert_eq!(
                        ready.iter(&threads).map(|t| t.0).collect::<Vec<_>>(),
                        ref_ready.iter().copied().collect::<Vec<_>>()
                    );
                    prop_assert_eq!(
                        waiters.waiting(),
                        ref_waiting.values().map(VecDeque::len).sum::<usize>()
                    );
                    for (&addr, q) in &ref_waiting {
                        let bucket = waiters.bucket_of(addr);
                        let mut chain = Vec::new();
                        let mut cur = waiters.head(bucket);
                        while cur != NIL {
                            if state[cur as usize] == State::Blocked(addr) {
                                chain.push(cur);
                            }
                            cur = threads[cur as usize].link_next;
                        }
                        prop_assert_eq!(
                            chain,
                            q.iter().copied().collect::<Vec<_>>(),
                            "per-address FIFO diverged at {:#x}",
                            addr
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn checkpoint_restores_occupied_buckets_exactly() {
        let mut t = slab(4);
        let mut w = WaitBuckets::new(8);
        w.park(&mut t, 64, ThreadId(0));
        w.park(&mut t, 64, ThreadId(1));
        let mut cp = WaitCheckpoint::default();
        w.checkpoint_into(&mut cp);
        assert!(cp.approx_bytes() > 0);
        let before = w.clone();
        w.park(&mut t, 32, ThreadId(2));
        let b = w.bucket_of(64);
        w.unpark(b, &mut t, ThreadId(0));
        w.restore(&cp);
        assert_eq!(w.waiting(), before.waiting());
        for i in 0..before.buckets.len() {
            assert_eq!(w.buckets[i], before.buckets[i]);
        }
    }
}
