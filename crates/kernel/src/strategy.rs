//! The atomicity strategies: how the kernel detects and repairs a thread
//! suspended inside a restartable atomic sequence.
//!
//! Three in-kernel strategies are implemented, matching §3 and §4 of the
//! paper, plus the i860 hardware bit of §7:
//!
//! * [`StrategyKind::Registered`] — Mach 3.0's explicit registration: one
//!   `(start, len)` PC range per address space, checked against the
//!   suspended PC.
//! * [`StrategyKind::Designated`] — Taos's designated sequences: a
//!   two-stage check (opcode table, then landmark at the expected offset)
//!   over the suspended instruction stream, allowing inlined sequences.
//! * [`StrategyKind::UserLevel`] — detection at user level (§4.1): the
//!   kernel redirects a resumed thread through a fixed guest recovery
//!   routine which performs its own PC check and rollback.
//! * [`StrategyKind::HardwareBit`] — the i860's processor-status bit: the
//!   kernel backs the thread up to the `begin_atomic` instruction if the
//!   bit is set at suspension.

use ras_isa::{CodeAddr, Opcode, Program};

use crate::KernelStats;

/// When the kernel performs the PC check (§4.1 of the paper).
///
/// Mach checks when the thread is suspended (the return PC is conveniently
/// at hand); Taos checks when it is about to be resumed (fewer restrictions
/// on faults when coming out of a context switch). On this simulator both
/// give identical results because a suspended thread cannot run in between;
/// only the accounting point differs — which the `ablations` benchmark
/// measures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CheckTime {
    /// Check as the thread is suspended (Mach).
    #[default]
    OnSuspend,
    /// Check as the thread is resumed (Taos).
    OnResume,
}

/// Which atomicity strategy the kernel runs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// No recovery: naive read-modify-write sequences are demonstrably
    /// unsafe under preemption (used to validate that the simulator really
    /// interleaves).
    #[default]
    None,
    /// Explicit registration (Mach 3.0, §3.1).
    Registered,
    /// Designated sequences (Taos, §3.2).
    Designated,
    /// User-level detection and restart (§4.1): on resume after an
    /// involuntary suspension, the thread re-enters at `recovery_pc` with
    /// the interrupted PC pushed on its stack. The kernel must know the
    /// routine's extent so it never redirects a thread that is *already
    /// inside* the recovery code — without that check, a quantum shorter
    /// than the routine produces cascading redirects that grow the user
    /// stack without bound (the recursion hazard §4.2 warns about, in
    /// user-level form).
    UserLevel {
        /// Entry point of the guest recovery routine.
        recovery_pc: CodeAddr,
        /// Length of the routine in instructions.
        recovery_len: u32,
    },
    /// i860-style hardware restart bit (§7).
    HardwareBit,
    /// Linux-`rseq`-style abort handlers: threads register a per-thread
    /// area word (`SYS_RSEQ`) and publish critical-section descriptors
    /// into it; a preemption inside a published window redirects the
    /// thread to the descriptor's abort handler instead of restarting
    /// from the top. The per-thread state lives in the TCB and guest
    /// memory, so the check itself is performed by the kernel (see
    /// `Kernel::apply_rseq_check`), not here.
    Rseq,
}

/// One designated-sequence shape: the opcode skeleton the compiler emits,
/// with the landmark's position within it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequenceTemplate {
    /// Human-readable name (for traces and tests).
    pub name: &'static str,
    /// The opcode pattern, first instruction to last.
    pub pattern: Vec<Opcode>,
    /// Index of the landmark no-op within `pattern`.
    pub landmark: usize,
}

impl SequenceTemplate {
    fn validate(&self) {
        assert!(
            self.pattern.get(self.landmark) == Some(&Opcode::Landmark),
            "template `{}` landmark index does not point at a landmark",
            self.name
        );
        assert!(
            matches!(self.pattern.last(), Some(&Opcode::Sw)),
            "template `{}` must end in its committing store",
            self.name
        );
    }
}

/// The set of designated-sequence templates the kernel recognizes, with the
/// two-stage lookup tables of §3.2.
#[derive(Clone, Debug)]
pub struct DesignatedSet {
    templates: Vec<SequenceTemplate>,
    /// Stage 1: for each opcode, whether it may appear in any template.
    eligible: [bool; Opcode::COUNT],
    /// Stage 2 index: for each opcode, the `(template, position)` pairs at
    /// which it appears.
    occurrences: Vec<Vec<(usize, usize)>>,
}

impl DesignatedSet {
    /// Builds a set from templates.
    ///
    /// # Panics
    ///
    /// Panics if a template's landmark index does not point at a landmark
    /// opcode or the template does not end in a store.
    pub fn new(templates: Vec<SequenceTemplate>) -> DesignatedSet {
        let mut eligible = [false; Opcode::COUNT];
        let mut occurrences = vec![Vec::new(); Opcode::COUNT];
        for (ti, t) in templates.iter().enumerate() {
            t.validate();
            for (pi, op) in t.pattern.iter().enumerate() {
                eligible[op.index()] = true;
                occurrences[op.index()].push((ti, pi));
            }
        }
        DesignatedSet {
            templates,
            eligible,
            occurrences,
        }
    }

    /// The standard shapes emitted by the `ras-guest` code generators:
    ///
    /// * `tas` — Figure 5's five-instruction Test-And-Set:
    ///   `lw; li; bne; landmark; sw`.
    /// * `cas` — compare-and-swap: `lw; bne; landmark; sw`.
    /// * `xchg` — exchange: `lw; landmark; sw`.
    /// * `faa` — fetch-and-add: `lw; addi; landmark; sw`.
    pub fn standard() -> DesignatedSet {
        DesignatedSet::new(vec![
            SequenceTemplate {
                name: "tas",
                pattern: vec![
                    Opcode::Lw,
                    Opcode::Li,
                    Opcode::Branch,
                    Opcode::Landmark,
                    Opcode::Sw,
                ],
                landmark: 3,
            },
            SequenceTemplate {
                name: "cas",
                pattern: vec![Opcode::Lw, Opcode::Branch, Opcode::Landmark, Opcode::Sw],
                landmark: 2,
            },
            SequenceTemplate {
                name: "xchg",
                pattern: vec![Opcode::Lw, Opcode::Landmark, Opcode::Sw],
                landmark: 1,
            },
            SequenceTemplate {
                name: "faa",
                pattern: vec![Opcode::Lw, Opcode::AluI, Opcode::Landmark, Opcode::Sw],
                landmark: 2,
            },
        ])
    }

    /// The registered templates.
    pub fn templates(&self) -> &[SequenceTemplate] {
        &self.templates
    }

    /// Stage 1 of the check: is the suspended opcode eligible to appear in
    /// any designated sequence? "Quite fast, yet succeeds in rejecting a
    /// large majority of the non-atomic cases and none of the atomic ones."
    pub fn stage1(&self, op: Opcode) -> bool {
        self.eligible[op.index()]
    }

    /// Stage 2: full landmark-and-shape verification. Returns the restart
    /// address if `pc` lies strictly inside a designated sequence (i.e. at
    /// least one instruction of it has already executed), or `None`.
    ///
    /// A thread suspended *at* the first instruction has executed nothing
    /// and needs no rollback; a thread suspended just past the final store
    /// has completed the sequence. Both return `None`.
    pub fn stage2(&self, program: &Program, pc: CodeAddr) -> Option<CodeAddr> {
        let inst = program.fetch(pc)?;
        for &(ti, pos) in &self.occurrences[inst.opcode().index()] {
            if pos == 0 {
                continue; // nothing executed yet; no rollback required
            }
            let t = &self.templates[ti];
            let Some(start) = pc.checked_sub(pos as CodeAddr) else {
                continue;
            };
            let matches_shape = t.pattern.iter().enumerate().all(|(k, want)| {
                program
                    .fetch(start + k as CodeAddr)
                    .is_some_and(|got| got.opcode() == *want)
            });
            // The landmark test is what makes the match unambiguous: the
            // compiler never emits a landmark outside a designated
            // sequence, so shape + landmark cannot be a false positive.
            let landmark_ok = program
                .fetch(start + t.landmark as CodeAddr)
                .is_some_and(|got| got.opcode() == Opcode::Landmark);
            if matches_shape && landmark_ok {
                return Some(start);
            }
        }
        None
    }
}

/// Runtime state of the kernel's strategy.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// See [`StrategyKind::None`].
    None,
    /// Explicit registration with the currently registered range.
    Registered {
        /// The registered `(start, len)`, if any.
        range: Option<(CodeAddr, u32)>,
    },
    /// Designated sequences with the recognizer tables.
    Designated {
        /// Template set.
        set: DesignatedSet,
    },
    /// User-level restart.
    UserLevel {
        /// Guest recovery routine entry.
        recovery_pc: CodeAddr,
        /// Routine length in instructions.
        recovery_len: u32,
    },
    /// i860 hardware bit.
    HardwareBit,
    /// rseq abort handlers; see [`StrategyKind::Rseq`].
    Rseq,
}

impl Strategy {
    /// Instantiates runtime state for a configured kind.
    pub fn from_kind(kind: &StrategyKind) -> Strategy {
        match kind {
            StrategyKind::None => Strategy::None,
            StrategyKind::Registered => Strategy::Registered { range: None },
            StrategyKind::Designated => Strategy::Designated {
                set: DesignatedSet::standard(),
            },
            StrategyKind::UserLevel {
                recovery_pc,
                recovery_len,
            } => Strategy::UserLevel {
                recovery_pc: *recovery_pc,
                recovery_len: *recovery_len,
            },
            StrategyKind::HardwareBit => Strategy::HardwareBit,
            StrategyKind::Rseq => Strategy::Rseq,
        }
    }

    /// Performs the in-kernel PC check for a suspended thread and returns
    /// the rolled-back PC if a restart is required. Charges check costs to
    /// `kernel_cycles` via the returned cycle count and updates `stats`
    /// counters; the caller adds the cycles to the machine clock.
    ///
    /// The user-level strategy performs no in-kernel check (that is its
    /// point); redirection is handled by the kernel's dispatch path.
    pub fn check(
        &self,
        program: &Program,
        pc: CodeAddr,
        cost: &ras_machine::CostModel,
        stats: &mut KernelStats,
    ) -> (Option<CodeAddr>, u64) {
        match self {
            // The rseq check needs the suspended thread's TCB and guest
            // memory (the published descriptor), which this signature does
            // not carry; the kernel dispatches it separately.
            Strategy::None
            | Strategy::UserLevel { .. }
            | Strategy::HardwareBit
            | Strategy::Rseq => (None, 0),
            Strategy::Registered { range } => {
                stats.ras_checks += 1;
                let cycles = u64::from(cost.ras_check_registered);
                let rollback = range
                    .and_then(|(start, len)| (pc > start && pc < start + len).then_some(start));
                if rollback.is_some() {
                    stats.ras_restarts += 1;
                }
                (rollback, cycles)
            }
            Strategy::Designated { set } => {
                stats.ras_checks += 1;
                let mut cycles = u64::from(cost.designated_stage1);
                let Some(inst) = program.fetch(pc) else {
                    return (None, cycles);
                };
                if !set.stage1(inst.opcode()) {
                    return (None, cycles);
                }
                stats.designated_stage1_hits += 1;
                cycles += u64::from(cost.designated_stage2);
                match set.stage2(program, pc) {
                    Some(start) => {
                        stats.ras_restarts += 1;
                        (Some(start), cycles)
                    }
                    None => {
                        stats.designated_false_alarms += 1;
                        (None, cycles)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};
    use ras_machine::CostModel;

    /// Assembles Figure 5's designated TAS shape at an offset, surrounded
    /// by unrelated code.
    fn designated_program() -> (Program, CodeAddr) {
        let mut asm = Asm::new();
        asm.li(Reg::T5, 0); // @0 unrelated
        asm.lw(Reg::T5, Reg::SP, 0); // @1 unrelated load (stage-1 lookalike)
        let start = asm.here();
        let out = asm.label();
        asm.lw(Reg::V0, Reg::A0, 0); // @2 sequence start
        asm.li(Reg::T0, 1); // @3
        asm.bnez(Reg::V0, out); // @4
        asm.landmark(); // @5
        asm.sw(Reg::T0, Reg::A0, 0); // @6 committing store
        asm.bind(out);
        asm.jr(Reg::RA); // @7
        (asm.finish().unwrap(), start)
    }

    #[test]
    fn standard_set_has_four_templates() {
        let set = DesignatedSet::standard();
        assert_eq!(set.templates().len(), 4);
        assert!(set.stage1(Opcode::Lw));
        assert!(set.stage1(Opcode::Landmark));
        assert!(!set.stage1(Opcode::Syscall));
        assert!(!set.stage1(Opcode::Jal));
    }

    #[test]
    fn stage2_restarts_interior_suspensions_only() {
        let (program, start) = designated_program();
        let set = DesignatedSet::standard();
        // At the first instruction: nothing executed, no rollback.
        assert_eq!(set.stage2(&program, start), None);
        // Inside: every interior point rolls back to the start.
        for pc in start + 1..start + 5 {
            assert_eq!(set.stage2(&program, pc), Some(start), "pc={pc}");
        }
        // Past the store: complete, no rollback.
        assert_eq!(set.stage2(&program, start + 5), None);
    }

    #[test]
    fn stage2_rejects_lookalikes_without_landmark() {
        // lw; li; bne; nop; sw — same shape but an ordinary nop where the
        // landmark should be. The kernel must NOT touch this thread's PC:
        // "mistakenly changing the PC ... could cause code to malfunction".
        let mut asm = Asm::new();
        let out = asm.label();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.bnez(Reg::V0, out);
        asm.nop();
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.bind(out);
        asm.jr(Reg::RA);
        let program = asm.finish().unwrap();
        let set = DesignatedSet::standard();
        for pc in 0..5 {
            assert_eq!(set.stage2(&program, pc), None, "pc={pc}");
        }
    }

    #[test]
    fn stage2_recognizes_all_standard_shapes() {
        let set = DesignatedSet::standard();
        // xchg: lw; landmark; sw
        let mut asm = Asm::new();
        asm.nop();
        let s = asm.here();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.landmark();
        asm.sw(Reg::A1, Reg::A0, 0);
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        assert_eq!(set.stage2(&p, s + 1), Some(s));
        assert_eq!(set.stage2(&p, s + 2), Some(s));

        // faa: lw; addi; landmark; sw
        let mut asm = Asm::new();
        let s = asm.here();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.landmark();
        asm.sw(Reg::V0, Reg::A0, 0);
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        for pc in s + 1..=s + 3 {
            assert_eq!(set.stage2(&p, pc), Some(s), "pc={pc}");
        }

        // cas: lw; bne out; landmark; sw
        let mut asm = Asm::new();
        let out = asm.label();
        let s = asm.here();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.bne(Reg::V0, Reg::A1, out);
        asm.landmark();
        asm.sw(Reg::A2, Reg::A0, 0);
        asm.bind(out);
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        for pc in s + 1..=s + 3 {
            assert_eq!(set.stage2(&p, pc), Some(s), "pc={pc}");
        }
    }

    #[test]
    fn registered_strategy_checks_range() {
        let (program, start) = designated_program();
        let mut stats = KernelStats::new();
        let cost = CostModel::default();
        let strat = Strategy::Registered {
            range: Some((start, 5)),
        };
        // Interior points restart.
        let (r, cycles) = strat.check(&program, start + 2, &cost, &mut stats);
        assert_eq!(r, Some(start));
        assert_eq!(cycles, u64::from(cost.ras_check_registered));
        // The first instruction needs no rollback.
        let (r, _) = strat.check(&program, start, &cost, &mut stats);
        assert_eq!(r, None);
        // One past the end is complete.
        let (r, _) = strat.check(&program, start + 5, &cost, &mut stats);
        assert_eq!(r, None);
        assert_eq!(stats.ras_checks, 3);
        assert_eq!(stats.ras_restarts, 1);
    }

    #[test]
    fn designated_strategy_counts_false_alarms() {
        let (program, start) = designated_program();
        let mut stats = KernelStats::new();
        let cost = CostModel::default();
        let strat = Strategy::Designated {
            set: DesignatedSet::standard(),
        };
        // The unrelated lw at @1 passes stage 1 but fails stage 2.
        let (r, cycles) = strat.check(&program, 1, &cost, &mut stats);
        assert_eq!(r, None);
        assert_eq!(stats.designated_stage1_hits, 1);
        assert_eq!(stats.designated_false_alarms, 1);
        assert_eq!(
            cycles,
            u64::from(cost.designated_stage1) + u64::from(cost.designated_stage2)
        );
        // An interior suspension restarts.
        let (r, _) = strat.check(&program, start + 3, &cost, &mut stats);
        assert_eq!(r, Some(start));
        assert_eq!(stats.ras_restarts, 1);
        // A completely ineligible opcode is rejected by stage 1 alone.
        let (r, cycles) = strat.check(&program, 7, &cost, &mut stats);
        assert_eq!(r, None);
        assert_eq!(cycles, u64::from(cost.designated_stage1));
        assert_eq!(stats.designated_false_alarms, 1, "no stage-2 entry");
    }

    #[test]
    fn none_and_user_level_do_no_kernel_check() {
        let (program, start) = designated_program();
        let mut stats = KernelStats::new();
        let cost = CostModel::default();
        for strat in [
            Strategy::None,
            Strategy::UserLevel {
                recovery_pc: 0,
                recovery_len: 4,
            },
            Strategy::HardwareBit,
            Strategy::Rseq,
        ] {
            let (r, cycles) = strat.check(&program, start + 2, &cost, &mut stats);
            assert_eq!(r, None);
            assert_eq!(cycles, 0);
        }
        assert_eq!(stats.ras_checks, 0);
    }

    #[test]
    #[should_panic(expected = "landmark index")]
    fn template_validation_rejects_bad_landmark() {
        DesignatedSet::new(vec![SequenceTemplate {
            name: "bad",
            pattern: vec![Opcode::Lw, Opcode::Sw],
            landmark: 0,
        }]);
    }

    #[test]
    fn from_kind_constructs_matching_variants() {
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::None),
            Strategy::None
        ));
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::Registered),
            Strategy::Registered { range: None }
        ));
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::Designated),
            Strategy::Designated { .. }
        ));
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::UserLevel {
                recovery_pc: 9,
                recovery_len: 7
            }),
            Strategy::UserLevel {
                recovery_pc: 9,
                recovery_len: 7
            }
        ));
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::HardwareBit),
            Strategy::HardwareBit
        ));
        assert!(matches!(
            Strategy::from_kind(&StrategyKind::Rseq),
            Strategy::Rseq
        ));
    }
}
