use std::fmt;

use ras_isa::DataAddr;
use ras_machine::RegFile;

use crate::runq::NIL;

/// Identifier of a simulated thread, dense from zero.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The id as a plain integer (as delivered to guest code in `$v0`).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Scheduling state of a thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// On the run queue.
    Ready,
    /// Currently executing on the (one) processor.
    Running,
    /// Blocked in a futex-style wait on a data address.
    Blocked {
        /// The address the thread is waiting on.
        addr: DataAddr,
    },
    /// Blocked joining another thread.
    Joining {
        /// The thread being joined.
        target: ThreadId,
    },
    /// Sleeping until the machine clock reaches a deadline.
    Sleeping {
        /// Absolute wake-up time in cycles.
        until: u64,
    },
    /// Exited; the TCB is kept for join bookkeeping.
    Exited,
}

/// A thread control block: architectural state plus scheduling metadata.
#[derive(Clone, Debug)]
pub struct Tcb {
    /// The thread's id.
    pub id: ThreadId,
    /// Saved register state (authoritative whenever the thread is not
    /// running).
    pub regs: RegFile,
    /// Scheduling state.
    pub state: ThreadState,
    /// Initial stack pointer (top of the thread's stack region).
    pub stack_top: DataAddr,
    /// Set when the thread was involuntarily suspended and the user-level
    /// restart strategy must redirect it through the recovery routine on
    /// its next dispatch (§4.1 of the paper).
    pub needs_user_restart: bool,
    /// User-mode cycles this thread has executed.
    pub user_cycles: u64,
    /// Byte address of the thread's registered rseq area word, if the
    /// thread has registered one (`SYS_RSEQ`). The area word holds the
    /// address of the currently published critical-section descriptor, or
    /// zero when none is active.
    pub rseq_area: Option<DataAddr>,
    /// Intrusive queue link: the next thread in whatever chain this
    /// thread is parked on (ready queue, wait bucket, or join chain —
    /// the states are mutually exclusive, so one link pair serves all),
    /// or `NIL` when unchained.
    pub(crate) link_next: u32,
    /// Intrusive queue link: the previous thread in the chain, or `NIL`.
    pub(crate) link_prev: u32,
    /// Head of the chain of threads joining *this* thread, or `NIL`.
    pub(crate) joiners_head: u32,
    /// Tail of the joiner chain, or `NIL`.
    pub(crate) joiners_tail: u32,
}

impl Tcb {
    /// Creates a ready thread with the given register state.
    pub fn new(id: ThreadId, regs: RegFile, stack_top: DataAddr) -> Tcb {
        Tcb {
            id,
            regs,
            state: ThreadState::Ready,
            stack_top,
            needs_user_restart: false,
            user_cycles: 0,
            rseq_area: None,
            link_next: NIL,
            link_prev: NIL,
            joiners_head: NIL,
            joiners_tail: NIL,
        }
    }

    /// Whether the thread can be placed on the run queue.
    pub fn is_ready(&self) -> bool {
        self.state == ThreadState::Ready
    }

    /// Whether the thread has exited.
    pub fn is_exited(&self) -> bool {
        self.state == ThreadState::Exited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_is_ready() {
        let t = Tcb::new(ThreadId(3), RegFile::new(7), 4096);
        assert!(t.is_ready());
        assert!(!t.is_exited());
        assert_eq!(t.regs.pc(), 7);
        assert_eq!(t.stack_top, 4096);
        assert!(!t.needs_user_restart);
        assert_eq!(t.rseq_area, None);
    }

    #[test]
    fn thread_id_display_and_raw() {
        assert_eq!(ThreadId(5).to_string(), "t5");
        assert_eq!(ThreadId(5).raw(), 5);
    }

    #[test]
    fn state_transitions_reflect_in_predicates() {
        let mut t = Tcb::new(ThreadId(0), RegFile::new(0), 0);
        t.state = ThreadState::Blocked { addr: 16 };
        assert!(!t.is_ready());
        t.state = ThreadState::Exited;
        assert!(t.is_exited());
    }
}
