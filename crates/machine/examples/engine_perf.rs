//! Quick A/B of the interpreter vs the translation tier on a hot
//! counter loop: `cargo run --release -p ras-machine --example engine_perf`.

use std::time::Instant;

use ras_isa::{Asm, DecodedProgram, Reg};
use ras_machine::{CpuProfile, Machine, RegFile, TranslationCache};

fn counter_loop(iters: i32) -> DecodedProgram {
    let mut a = Asm::new();
    a.li(Reg::S0, iters);
    a.li(Reg::S1, 64);
    let top = a.bind_new();
    a.lw(Reg::T0, Reg::S1, 0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sw(Reg::T0, Reg::S1, 0);
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, top);
    a.halt();
    DecodedProgram::new(&a.finish().unwrap())
}

fn main() {
    let p = counter_loop(20_000_000);
    let profile = CpuProfile::r3000();

    let mut m = Machine::new(profile.clone(), 4096);
    let mut regs = RegFile::new(p.entry());
    let t0 = Instant::now();
    let exit = m.run(&p, &mut regs, u64::MAX);
    let interp = t0.elapsed();
    let retired = m.instructions_retired();
    println!(
        "interp:     {exit:?} {retired} inst in {:.1} ms = {:.1}M inst/s",
        interp.as_secs_f64() * 1e3,
        retired as f64 / interp.as_secs_f64() / 1e6
    );

    let mut m = Machine::new(profile.clone(), 4096);
    let mut regs = RegFile::new(p.entry());
    let mut cache = TranslationCache::new(&p, &profile, &[]);
    let t0 = Instant::now();
    let exit = m.run_translated(&p, &mut cache, &mut regs, u64::MAX);
    let translated = t0.elapsed();
    let retired = m.instructions_retired();
    println!(
        "translated: {exit:?} {retired} inst in {:.1} ms = {:.1}M inst/s",
        translated.as_secs_f64() * 1e3,
        retired as f64 / translated.as_secs_f64() / 1e6
    );
    println!(
        "speedup: {:.2}x; stats: {:?}",
        interp.as_secs_f64() / translated.as_secs_f64(),
        cache.stats()
    );
}
