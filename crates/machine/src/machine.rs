use ras_isa::{CodeAddr, DataAddr, DecodedProgram, Inst, Opcode, Reg};

use crate::{CostModel, CpuProfile, MemError, Memory, RegFile};

/// One entry of the execution trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle count when the instruction issued.
    pub clock: u64,
    /// Its address.
    pub pc: CodeAddr,
    /// The instruction itself.
    pub inst: Inst,
}

/// Classification of one logged data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A plain word load (`lw`).
    Load,
    /// A plain word store (`sw`).
    Store,
    /// An atomic read-modify-write: the hardware `tas` instruction or a
    /// kernel-emulated Test-And-Set performed on the thread's behalf.
    Rmw,
}

/// One entry of the optional data-memory access log, recorded as the
/// access retires. Used by the `ras-model` happens-before race sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// PC of the instruction that performed the access (for a kernel
    /// emulated RMW, the PC the thread resumes at after the trap).
    pub pc: CodeAddr,
    /// The byte address accessed.
    pub addr: DataAddr,
    /// What the access did.
    pub kind: AccessKind,
    /// Cycle count when the access retired.
    pub clock: u64,
    /// Whether the access executed under hardware atomicity: the i860
    /// restart bit was set, the instruction was a hardware `tas`, or the
    /// kernel performed the RMW with interrupts disabled.
    pub atomic: bool,
    /// The data value: the word a load observed, the word a store wrote,
    /// or — for a read-modify-write — the *old* word the RMW read. Lets
    /// observers reconstruct value transitions (e.g. lock hold and
    /// contention intervals in `ras-obs`).
    pub value: u32,
}

/// Bookkeeping level of the monomorphized execution core: every
/// collector compiled out — the fast loop.
pub(crate) const LEVEL_FAST: u8 = 0;
/// Watched-access telemetry only: memory operations check the access
/// watch and log hits, everything else compiles out.
pub(crate) const LEVEL_TELEMETRY: u8 = 1;
/// Every collector live: mix, trace, unfiltered access log, per-PC
/// cycles, and dirty tracking.
pub(crate) const LEVEL_FULL: u8 = 2;

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The cycle deadline was reached (timer interrupt is pending).
    Budget,
    /// A `syscall` instruction executed; the PC has advanced past it and
    /// the kernel should dispatch on `$v0`.
    Syscall,
    /// A `halt` instruction executed.
    Halt,
    /// Execution faulted; the PC still addresses the faulting instruction
    /// so it can be re-executed after the kernel services the fault.
    Fault(Fault),
}

/// A processor fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Access to a non-resident page; the kernel pages it in and resumes.
    PageFault {
        /// Faulting byte address.
        addr: DataAddr,
        /// PC of the faulting instruction.
        pc: CodeAddr,
    },
    /// Unaligned or out-of-range access — a guest bug.
    BadMemory {
        /// Faulting byte address.
        addr: DataAddr,
        /// PC of the faulting instruction.
        pc: CodeAddr,
    },
    /// The PC ran off the end of the program.
    BadPc {
        /// The invalid PC.
        pc: CodeAddr,
    },
    /// An instruction not supported by this CPU profile (e.g. `tas` on the
    /// R3000, which has no hardware atomics).
    Illegal {
        /// PC of the illegal instruction.
        pc: CodeAddr,
        /// Human-readable reason.
        reason: &'static str,
    },
}

/// The simulated uniprocessor: data memory, a cycle clock, and (for i860
/// profiles) the hardware restartable-sequence bit.
///
/// Thread register files live in the kernel; the machine executes whichever
/// one the kernel passes in, making context switches a pure kernel-side
/// concern, as on real hardware.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) mem: Memory,
    profile: CpuProfile,
    /// The profile's cost model, hoisted out of the profile at construction
    /// so the execution loop reads plain fields instead of copying the
    /// whole model per retired instruction.
    pub(crate) cost: CostModel,
    /// Upper bound on the cycles any single instruction can charge, used to
    /// amortize the deadline check over straight-line runs.
    max_inst_cycles: u64,
    pub(crate) clock: u64,
    /// i860-style restart bit: `Some(pc)` while an atomic sequence begun at
    /// `pc` is in flight.
    pub(crate) atomic_from: Option<CodeAddr>,
    atomic_deadline: u64,
    /// Total retired instructions (cheap enough to keep always-on).
    pub(crate) retired: u64,
    /// Optional retired-instruction counts per opcode class (see
    /// [`Machine::enable_mix`]).
    mix: Option<Box<[u64; Opcode::COUNT]>>,
    /// Optional ring buffer of recently retired instructions.
    trace: Option<TraceRing>,
    /// Optional log of data-memory accesses (see [`Machine::enable_access_log`]).
    access_log: Option<Vec<MemAccess>>,
    /// Optional sorted address filter for the access log (see
    /// [`Machine::set_access_watch`]): when present, only accesses to
    /// these addresses are logged.
    access_watch: Option<AccessWatch>,
    /// Hoisted quick-reject range for the watch, kept directly on the
    /// machine so the telemetry loop reads two hot fields per memory
    /// operation instead of chasing the `Option<AccessWatch>` box. An
    /// access with `addr - watch_lo > watch_span` (wrapping) cannot be
    /// watched; lock words sit in one small contiguous data region, so
    /// stack and counter traffic is rejected by this single compare.
    /// `(0, u32::MAX)` — everything passes — when no watch is installed.
    pub(crate) watch_lo: u32,
    pub(crate) watch_span: u32,
    /// Optional per-PC cycle histogram (see [`Machine::enable_pc_profile`]),
    /// grown on demand to cover the highest PC executed.
    pc_cycles: Option<Vec<u64>>,
    /// Forces [`Machine::run`] onto the instrumented loop even with no
    /// instrumentation enabled — for differential benchmarking of the two
    /// monomorphized loop variants.
    force_instrumented: bool,
}

/// The access-log address filter: a sorted set, consulted only after
/// the hoisted range check on the machine has already passed.
#[derive(Debug, Clone)]
struct AccessWatch {
    /// The watched addresses, sorted for binary search.
    addrs: Box<[u32]>,
    /// The set is exactly every word in `[addrs[0], addrs[last]]` —
    /// the common "array of lock words" layout. Membership then needs
    /// only the range test plus word alignment, no search: the hot log
    /// path runs arithmetic instead of chasing the address table.
    dense: bool,
}

impl AccessWatch {
    fn new(addrs: Box<[u32]>) -> AccessWatch {
        let lo = addrs.first().copied().unwrap_or(0);
        let dense = !addrs.is_empty()
            && addrs
                .iter()
                .enumerate()
                .all(|(i, &a)| a == lo + 4 * i as u32);
        AccessWatch { addrs, dense }
    }

    #[inline(always)]
    fn hit(&self, addr: DataAddr) -> bool {
        if self.dense {
            let off = addr.wrapping_sub(self.addrs[0]);
            return off < 4 * self.addrs.len() as u32 && off & 3 == 0;
        }
        self.addrs.binary_search(&addr).is_ok()
    }
}

#[derive(Debug, Clone)]
struct TraceRing {
    entries: Vec<TraceEntry>,
    depth: usize,
    next: usize,
}

/// A machine-side checkpoint: the execution scalars
/// [`Machine::restore`] rewinds by value, plus the undo-log mark memory
/// rewinds to and a residency snapshot when paging is enabled. Created
/// by [`Machine::checkpoint`]; sized in O(1) except under paging.
#[derive(Debug, Clone)]
pub struct MachineCheckpoint {
    clock: u64,
    atomic_from: Option<CodeAddr>,
    atomic_deadline: u64,
    retired: u64,
    undo_mark: usize,
    access_log_len: usize,
    resident: Option<Vec<bool>>,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed data memory.
    pub fn new(profile: CpuProfile, mem_bytes: u32) -> Machine {
        let cost = *profile.cost();
        Machine {
            mem: Memory::new(mem_bytes),
            profile,
            cost,
            max_inst_cycles: Self::bound_inst_cycles(&cost),
            clock: 0,
            atomic_from: None,
            atomic_deadline: 0,
            retired: 0,
            mix: None,
            trace: None,
            access_log: None,
            access_watch: None,
            watch_lo: 0,
            watch_span: u32::MAX,
            pc_cycles: None,
            force_instrumented: false,
        }
    }

    /// The most cycles any single instruction can charge under `cost`. The
    /// amortized deadline check in [`Machine::run`] relies on this bound:
    /// as long as `clock + bound <= deadline`, the next instruction cannot
    /// overshoot the deadline, so no per-instruction check is needed.
    fn bound_inst_cycles(cost: &CostModel) -> u64 {
        let singles = [
            cost.alu,
            cost.load,
            cost.store,
            cost.branch,
            cost.nop,
            cost.interlocked,
        ];
        let max_single = singles.into_iter().max().unwrap_or(0);
        u64::from(max_single.max(cost.jump + cost.call_extra)).max(1)
    }

    /// Starts logging every guest data-memory access (loads, stores, and
    /// atomic read-modify-writes) into an unbounded buffer. Consumers
    /// should drain it regularly with [`Machine::take_accesses`].
    pub fn enable_access_log(&mut self) {
        if self.access_log.is_none() {
            self.access_log = Some(Vec::new());
        }
    }

    /// Whether the access log is enabled.
    pub fn access_log_enabled(&self) -> bool {
        self.access_log.is_some()
    }

    /// Restricts the access log to `addrs`: accesses to any other
    /// address are dropped before they reach the buffer. The streaming
    /// telemetry layer watches a handful of lock words over millions of
    /// ordinary accesses; filtering at the source keeps the log — and
    /// the per-boundary drain — proportional to lock traffic instead of
    /// total memory traffic. Passing a new set replaces the old one.
    pub fn set_access_watch(&mut self, addrs: &[u32]) {
        let mut sorted: Vec<u32> = addrs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.watch_lo = sorted.first().copied().unwrap_or(u32::MAX);
        self.watch_span = match (sorted.first(), sorted.last()) {
            (Some(&lo), Some(&hi)) => hi - lo,
            _ => 0,
        };
        self.access_watch = Some(AccessWatch::new(sorted.into_boxed_slice()));
    }

    /// Removes the access-log address filter: every data access is
    /// logged again.
    pub fn clear_access_watch(&mut self) {
        self.access_watch = None;
        self.watch_lo = 0;
        self.watch_span = u32::MAX;
    }

    /// The telemetry loop's per-memory-operation test: one wrapping
    /// subtract and compare against the hoisted watch range. False
    /// positives (unwatched addresses between two lock words) are
    /// resolved by the exact search inside `log_access`; an address
    /// outside the range is proven unwatched without touching the watch
    /// set.
    #[inline(always)]
    pub(crate) fn watch_may_hit(&self, addr: DataAddr) -> bool {
        addr.wrapping_sub(self.watch_lo) <= self.watch_span
    }

    /// Whether `addr` passes the access-log filter (vacuously true when
    /// no watch set is installed).
    #[inline(always)]
    fn watched(&self, addr: DataAddr) -> bool {
        match &self.access_watch {
            None => true,
            Some(watch) => watch.hit(addr),
        }
    }

    /// Drains and returns the accesses logged since the last call. Empty
    /// unless [`Machine::enable_access_log`] was called.
    pub fn take_accesses(&mut self) -> Vec<MemAccess> {
        match &mut self.access_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Visits and clears the accesses logged since the last drain without
    /// giving up the log's buffer — the allocation-free counterpart of
    /// [`Machine::take_accesses`] for callers that drain after every
    /// instruction.
    pub fn drain_accesses(&mut self, mut f: impl FnMut(&MemAccess)) {
        if let Some(log) = &mut self.access_log {
            for acc in log.iter() {
                f(acc);
            }
            log.clear();
        }
    }

    /// Logs an atomic read-modify-write performed *by the kernel* on a
    /// thread's behalf (the `SYS_TAS` emulation trap of §2.3), so the
    /// race sanitizer sees kernel-emulated Test-And-Set as the atomic
    /// access it is. `old` is the lock word the kernel read before
    /// writing 1.
    pub fn log_kernel_rmw(&mut self, pc: CodeAddr, addr: DataAddr, old: u32) {
        let clock = self.clock;
        if !self.watched(addr) {
            return;
        }
        if let Some(log) = &mut self.access_log {
            log.push(MemAccess {
                pc,
                addr,
                kind: AccessKind::Rmw,
                clock,
                atomic: true,
                value: old,
            });
        }
    }

    #[inline(always)]
    fn log_access(
        &mut self,
        pc: CodeAddr,
        addr: DataAddr,
        kind: AccessKind,
        atomic: bool,
        value: u32,
    ) {
        let clock = self.clock;
        self.log_access_at(clock, pc, addr, kind, atomic, value);
    }

    // `inline(never)` keeps the log push out of `execute_one`'s hot
    // path: inlined call sites on the telemetry loop otherwise bloat
    // the dispatch enough to tax *every* instruction, watched or not.
    // Deliberately not `#[cold]` — on a telemetry run every watched
    // access lands here, so the body must stay speed-optimised.
    // The translated tier calls this directly with a reconstructed clock
    // (`m.clock` is only charged at trace end, so mid-trace accesses pass
    // `m.clock + prefix_cycles` to reproduce the interpreter's stamps).
    #[inline(never)]
    pub(crate) fn log_access_at(
        &mut self,
        clock: u64,
        pc: CodeAddr,
        addr: DataAddr,
        kind: AccessKind,
        atomic: bool,
        value: u32,
    ) {
        if let Some(watch) = &self.access_watch {
            if !watch.hit(addr) {
                return;
            }
            // A watched load that read zero observed the lock free — a
            // non-event to every consumer of a filtered stream (the
            // streaming telemetry and the exact offline replay both
            // ignore it), and the single largest class of watched
            // traffic on an uncontended workload.
            if kind == AccessKind::Load && value == 0 {
                return;
            }
        }
        if let Some(log) = &mut self.access_log {
            log.push(MemAccess {
                pc,
                addr,
                kind,
                clock,
                atomic,
                value,
            });
        }
    }

    /// Clears the i860 restart bit if its 32-cycle window has expired.
    /// [`Machine::run`] polls this internally; kernels that drive the
    /// machine one instruction at a time (the model checker's oracle mode)
    /// must poll it themselves before each step.
    pub fn poll_atomic_expiry(&mut self) {
        if self.atomic_from.is_some() && self.clock >= self.atomic_deadline {
            self.atomic_from = None;
        }
    }

    /// Enables a ring buffer recording the last `depth` retired
    /// instructions (for post-mortem debugging of guest code).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn enable_trace(&mut self, depth: usize) {
        assert!(depth > 0, "trace depth must be positive");
        self.trace = Some(TraceRing {
            entries: Vec::with_capacity(depth),
            depth,
            next: 0,
        });
    }

    /// The most recent trace entries, oldest first. Empty unless
    /// [`Machine::enable_trace`] was called.
    pub fn trace(&self) -> Vec<TraceEntry> {
        match &self.trace {
            None => Vec::new(),
            Some(ring) => {
                let mut out = Vec::with_capacity(ring.entries.len());
                if ring.entries.len() == ring.depth {
                    out.extend_from_slice(&ring.entries[ring.next..]);
                }
                out.extend_from_slice(&ring.entries[..ring.next.min(ring.entries.len())]);
                out
            }
        }
    }

    /// Starts collecting per-opcode retired-instruction counts. Off by
    /// default: the histogram puts an extra indexed add on the hot path,
    /// so experiments that want the mix opt in.
    pub fn enable_mix(&mut self) {
        if self.mix.is_none() {
            self.mix = Some(Box::new([0; Opcode::COUNT]));
        }
    }

    /// Whether per-opcode mix collection is enabled.
    pub fn mix_enabled(&self) -> bool {
        self.mix.is_some()
    }

    /// Retired-instruction counts per opcode class — the instruction mix,
    /// for profiling which operations a mechanism actually executes. All
    /// zeros unless [`Machine::enable_mix`] was called before the run.
    pub fn instruction_mix(&self) -> [u64; Opcode::COUNT] {
        match &self.mix {
            Some(mix) => **mix,
            None => [0; Opcode::COUNT],
        }
    }

    /// Total retired instructions (always counted, even on the fast loop).
    pub fn instructions_retired(&self) -> u64 {
        self.retired
    }

    /// Forces [`Machine::run`] onto the instrumented loop variant even
    /// with no instrumentation enabled. The two monomorphized loops must
    /// retire identical streams; benchmarks flip this to prove it and to
    /// measure the spread between them.
    pub fn set_force_instrumented(&mut self, on: bool) {
        self.force_instrumented = on;
    }

    /// Whether [`Machine::run`] will take the instrumented loop variant.
    /// Dirty tracking counts as instrumentation: the undo log and
    /// incremental fingerprint are fed by the instrumented loop's tracked
    /// stores, so the fast loop stays byte-for-byte untouched.
    pub fn instrumented(&self) -> bool {
        self.force_instrumented
            || self.mix.is_some()
            || self.trace.is_some()
            || self.access_log.is_some()
            || self.pc_cycles.is_some()
            || self.mem.dirty_enabled()
    }

    /// Starts accumulating a per-PC cycle histogram: every retired
    /// instruction adds the cycles it charged to its PC's bucket. Like
    /// the other collectors this forces the instrumented loop; the fast
    /// loop is untouched. Symbolize the result with
    /// `ras_obs::symbolized_profile`.
    pub fn enable_pc_profile(&mut self) {
        if self.pc_cycles.is_none() {
            self.pc_cycles = Some(Vec::new());
        }
    }

    /// Whether the per-PC cycle histogram is enabled.
    pub fn pc_profile_enabled(&self) -> bool {
        self.pc_cycles.is_some()
    }

    /// The per-PC cycle histogram, indexed by PC (shorter than the
    /// program if the tail never executed). Empty unless
    /// [`Machine::enable_pc_profile`] was called before the run.
    pub fn pc_cycles(&self) -> &[u64] {
        self.pc_cycles.as_deref().unwrap_or(&[])
    }

    /// The current cycle count.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Elapsed simulated time in microseconds.
    pub fn elapsed_micros(&self) -> f64 {
        self.profile.micros(self.clock)
    }

    /// Advances the clock by `cycles` — used by the kernel to charge trap,
    /// scheduling, and check costs.
    pub fn charge(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// The CPU profile.
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// Data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (kernel use: loading images, paging).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// If the i860 restart bit is set, the PC of the `begin_atomic` that
    /// set it. The kernel consults this when suspending a thread.
    pub fn atomic_restart_pc(&self) -> Option<CodeAddr> {
        self.atomic_from
    }

    /// Clears the restart bit (kernel does this after rolling a thread
    /// back, and on context switch).
    pub fn clear_atomic_bit(&mut self) {
        self.atomic_from = None;
    }

    /// Takes a machine checkpoint: the execution scalars by value plus
    /// the current undo-log mark, so [`Machine::restore`] rewinds memory
    /// in O(stores since the checkpoint) instead of copying the image.
    /// Requires dirty tracking ([`Memory::enable_dirty`]) so tracked
    /// stores since the checkpoint can be undone.
    ///
    /// Observational collectors (mix, trace, per-PC cycles) are *not*
    /// part of a checkpoint: they describe what was executed, not where
    /// execution can resume, and no restored consumer reads them.
    ///
    /// # Panics
    ///
    /// Panics if dirty tracking is not enabled.
    pub fn checkpoint(&self) -> MachineCheckpoint {
        assert!(
            self.mem.dirty_enabled(),
            "machine checkpoints need dirty tracking (Memory::enable_dirty)"
        );
        MachineCheckpoint {
            clock: self.clock,
            atomic_from: self.atomic_from,
            atomic_deadline: self.atomic_deadline,
            retired: self.retired,
            undo_mark: self.mem.undo_len(),
            access_log_len: self.access_log.as_ref().map_or(0, Vec::len),
            resident: self.mem.residency(),
        }
    }

    /// Rewinds to a checkpoint taken on this machine: pops the undo log
    /// back to the checkpoint's mark (restoring memory words and the
    /// incremental fingerprint exactly), restores the execution scalars,
    /// truncates the access log, and restores page residency. Returns the
    /// number of undo entries replayed.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is from a machine state this machine has
    /// already rewound past (its undo mark exceeds the log length).
    pub fn restore(&mut self, cp: &MachineCheckpoint) -> u64 {
        let replayed = self.mem.rewind_undo(cp.undo_mark);
        self.clock = cp.clock;
        self.atomic_from = cp.atomic_from;
        self.atomic_deadline = cp.atomic_deadline;
        self.retired = cp.retired;
        if let Some(log) = &mut self.access_log {
            log.truncate(cp.access_log_len);
        }
        self.mem.restore_residency(&cp.resident);
        replayed
    }

    /// Runs instructions from `regs.pc()` until the clock reaches
    /// `deadline`, a syscall or halt executes, or a fault occurs.
    ///
    /// While the i860 restart bit is set, the deadline is not honored —
    /// the hardware defers interrupts until the bit clears (next store or
    /// 32-cycle expiry), exactly as described in §7 of the paper.
    ///
    /// Dispatches to one of three monomorphized loop variants sharing a
    /// single `execute_one` core: a fast loop with all bookkeeping
    /// compiled out, taken whenever no instrumentation is enabled; a
    /// telemetry loop whose only addition is the watched-address check
    /// on memory operations (what the streaming lock telemetry needs,
    /// cheap enough to run in production); and a fully instrumented loop
    /// feeding the mix/trace/access-log collectors. All three retire
    /// bit-identical architectural state.
    pub fn run(&mut self, program: &DecodedProgram, regs: &mut RegFile, deadline: u64) -> Exit {
        match self.level() {
            LEVEL_FAST => self.run_loop::<LEVEL_FAST>(program, regs, deadline),
            LEVEL_TELEMETRY => self.run_loop::<LEVEL_TELEMETRY>(program, regs, deadline),
            _ => self.run_loop::<LEVEL_FULL>(program, regs, deadline),
        }
    }

    /// Which loop variant [`Machine::run`] will take. A watch-filtered
    /// access log with no other collector is the telemetry level; an
    /// unfiltered log (the model checker's race sanitizer wants every
    /// access) or any other collector forces the full level.
    pub(crate) fn level(&self) -> u8 {
        if self.force_instrumented
            || self.mix.is_some()
            || self.trace.is_some()
            || self.pc_cycles.is_some()
            || self.mem.dirty_enabled()
            || (self.access_log.is_some() && self.access_watch.is_none())
        {
            LEVEL_FULL
        } else if self.access_log.is_some() {
            LEVEL_TELEMETRY
        } else {
            LEVEL_FAST
        }
    }

    fn run_loop<const LEVEL: u8>(
        &mut self,
        program: &DecodedProgram,
        regs: &mut RegFile,
        deadline: u64,
    ) -> Exit {
        let cost = self.cost;
        let bound = self.max_inst_cycles;
        loop {
            // 32-cycle expiry: the bus lock is dropped automatically.
            self.poll_atomic_expiry();
            if self.atomic_from.is_none() {
                // Straight-line batch: while even a worst-case charge lands
                // at or before the deadline, no per-instruction budget
                // check is needed. The restart bit stays clear for the
                // whole batch unless an instruction sets it (which breaks
                // out), so the expiry poll is a no-op here too.
                while self.atomic_from.is_none() && self.clock.saturating_add(bound) <= deadline {
                    if let Some(exit) = self.execute_counted::<LEVEL>(program, regs, &cost) {
                        return exit;
                    }
                }
                if self.atomic_from.is_none() {
                    // Careful tail near the deadline: the exact
                    // per-instruction check of the unamortized loop, so
                    // `Exit::Budget` fires at precisely the same boundary.
                    if self.clock >= deadline {
                        return Exit::Budget;
                    }
                    if let Some(exit) = self.execute_counted::<LEVEL>(program, regs, &cost) {
                        return exit;
                    }
                }
            } else {
                // Atomic window: interrupts are deferred until the bit
                // clears, so the deadline is not consulted; expiry is
                // polled at the top of the loop after every instruction.
                if let Some(exit) = self.execute_counted::<LEVEL>(program, regs, &cost) {
                    return exit;
                }
            }
        }
    }

    /// Executes exactly one instruction. Returns `None` when the
    /// instruction retired normally, or `Some` of `Exit::Syscall`,
    /// `Exit::Halt`, or `Exit::Fault` on those events. Used by the model
    /// checker's oracle mode and fine-grained tests; always takes the
    /// instrumented core so single-stepped runs observe every enabled
    /// collector.
    pub fn step(&mut self, program: &DecodedProgram, regs: &mut RegFile) -> Option<Exit> {
        let cost = self.cost;
        self.execute_counted::<LEVEL_FULL>(program, regs, &cost)
    }

    /// Wraps [`Machine::execute_one`] with the per-PC cycle histogram.
    /// Below `LEVEL_FULL` this delegates directly and compiles to the
    /// same code as calling `execute_one`; on the fully instrumented
    /// path it measures the clock delta each instruction charged and
    /// accumulates it into that PC's bucket.
    #[inline(always)]
    pub(crate) fn execute_counted<const LEVEL: u8>(
        &mut self,
        program: &DecodedProgram,
        regs: &mut RegFile,
        cost: &CostModel,
    ) -> Option<Exit> {
        if LEVEL != LEVEL_FULL || self.pc_cycles.is_none() {
            return self.execute_one::<LEVEL>(program, regs, cost);
        }
        let pc = regs.pc();
        let before = self.clock;
        let exit = self.execute_one::<LEVEL>(program, regs, cost);
        let charged = self.clock - before;
        if let Some(hist) = &mut self.pc_cycles {
            let i = pc as usize;
            if i >= hist.len() {
                hist.resize(i + 1, 0);
            }
            hist[i] += charged;
        }
        exit
    }

    /// The single execution core shared by both [`Machine::run`] loop
    /// variants and [`Machine::step`], so the fast path cannot drift from
    /// the instrumented one. At `LEVEL_FAST` the mix, trace, and
    /// access-log bookkeeping compiles down to nothing; at
    /// `LEVEL_TELEMETRY` only the watched-address check on memory
    /// operations survives; `cost` is the caller-hoisted cost model.
    #[inline(always)]
    fn execute_one<const LEVEL: u8>(
        &mut self,
        program: &DecodedProgram,
        regs: &mut RegFile,
        cost: &CostModel,
    ) -> Option<Exit> {
        let pc = regs.pc();
        let Some(inst) = program.fetch(pc) else {
            return Some(Exit::Fault(Fault::BadPc { pc }));
        };
        self.retired += 1;
        if LEVEL == LEVEL_FULL {
            if let Some(mix) = &mut self.mix {
                mix[program.opcode_index(pc)] += 1;
            }
            if let Some(ring) = &mut self.trace {
                let entry = TraceEntry {
                    clock: self.clock,
                    pc,
                    inst,
                };
                if ring.entries.len() < ring.depth {
                    ring.entries.push(entry);
                } else {
                    ring.entries[ring.next] = entry;
                }
                ring.next += 1;
                if ring.next == ring.depth {
                    ring.next = 0;
                }
            }
        }
        match inst {
            Inst::Li { rd, imm } => {
                self.clock += u64::from(cost.alu);
                regs.set(rd, imm as u32);
                regs.advance();
            }
            Inst::Alu { op, rd, rs, rt } => {
                self.clock += u64::from(cost.alu);
                let v = op.apply(regs.get(rs), regs.get(rt));
                regs.set(rd, v);
                regs.advance();
            }
            Inst::AluI { op, rd, rs, imm } => {
                self.clock += u64::from(cost.alu);
                let v = op.apply(regs.get(rs), imm as u32);
                regs.set(rd, v);
                regs.advance();
            }
            Inst::Lw { rd, base, off } => {
                self.clock += u64::from(cost.load);
                let addr = regs.get(base).wrapping_add(off as u32);
                match self.mem.load(addr) {
                    Ok(v) => {
                        if LEVEL == LEVEL_FULL
                            || (LEVEL == LEVEL_TELEMETRY && self.watch_may_hit(addr))
                        {
                            self.log_access(
                                pc,
                                addr,
                                AccessKind::Load,
                                self.atomic_from.is_some(),
                                v,
                            );
                        }
                        regs.set(rd, v);
                        regs.advance();
                    }
                    Err(e) => return Some(Exit::Fault(Self::mem_fault(e, addr, pc))),
                }
            }
            Inst::Sw { rs, base, off } => {
                self.clock += u64::from(cost.store);
                let addr = regs.get(base).wrapping_add(off as u32);
                let was_atomic = self.atomic_from.is_some();
                let value = regs.get(rs);
                let stored = if LEVEL == LEVEL_FULL {
                    self.mem.store_tracked(addr, value)
                } else {
                    self.mem.store(addr, value)
                };
                match stored {
                    Ok(()) => {
                        // A store commits and releases an i860 atomic
                        // sequence.
                        self.atomic_from = None;
                        if LEVEL == LEVEL_FULL
                            || (LEVEL == LEVEL_TELEMETRY && self.watch_may_hit(addr))
                        {
                            self.log_access(pc, addr, AccessKind::Store, was_atomic, value);
                        }
                        regs.advance();
                    }
                    Err(e) => return Some(Exit::Fault(Self::mem_fault(e, addr, pc))),
                }
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                self.clock += u64::from(cost.branch);
                if cond.holds(regs.get(rs), regs.get(rt)) {
                    regs.set_pc(target);
                } else {
                    regs.advance();
                }
            }
            Inst::J { target } => {
                self.clock += u64::from(cost.jump);
                regs.set_pc(target);
            }
            Inst::Jal { target } => {
                self.clock += u64::from(cost.jump + cost.call_extra);
                regs.set(Reg::RA, pc + 1);
                regs.set_pc(target);
            }
            Inst::Jr { rs } => {
                self.clock += u64::from(cost.jump);
                regs.set_pc(regs.get(rs));
            }
            Inst::Jalr { rd, rs } => {
                self.clock += u64::from(cost.jump + cost.call_extra);
                let target = regs.get(rs);
                regs.set(rd, pc + 1);
                regs.set_pc(target);
            }
            Inst::Nop | Inst::Landmark => {
                self.clock += u64::from(cost.nop);
                regs.advance();
            }
            Inst::Syscall => {
                // The kernel charges trap cost; PC advances past the
                // syscall so the thread resumes after it.
                regs.advance();
                return Some(Exit::Syscall);
            }
            Inst::Tas { rd, base } => {
                if !self.profile.has_interlocked() {
                    return Some(Exit::Fault(Fault::Illegal {
                        pc,
                        reason: "no hardware interlocked instructions on this CPU",
                    }));
                }
                self.clock += u64::from(cost.interlocked);
                let addr = regs.get(base);
                let old = match self.mem.load(addr) {
                    Ok(v) => v,
                    Err(e) => return Some(Exit::Fault(Self::mem_fault(e, addr, pc))),
                };
                let stored = if LEVEL == LEVEL_FULL {
                    self.mem.store_tracked(addr, 1)
                } else {
                    self.mem.store(addr, 1)
                };
                if let Err(e) = stored {
                    return Some(Exit::Fault(Self::mem_fault(e, addr, pc)));
                }
                self.atomic_from = None;
                if LEVEL == LEVEL_FULL || (LEVEL == LEVEL_TELEMETRY && self.watch_may_hit(addr)) {
                    self.log_access(pc, addr, AccessKind::Rmw, true, old);
                }
                regs.set(rd, old);
                regs.advance();
            }
            Inst::BeginAtomic => {
                if !self.profile.has_restart_bit() {
                    return Some(Exit::Fault(Fault::Illegal {
                        pc,
                        reason: "no hardware restartable-sequence bit on this CPU",
                    }));
                }
                self.clock += u64::from(cost.alu);
                self.atomic_from = Some(pc);
                self.atomic_deadline = self.clock + 32;
                regs.advance();
            }
            Inst::Halt => {
                self.clock += u64::from(cost.alu);
                regs.advance();
                return Some(Exit::Halt);
            }
        }
        None
    }

    pub(crate) fn mem_fault(e: MemError, addr: DataAddr, pc: CodeAddr) -> Fault {
        match e {
            MemError::NotResident { .. } => Fault::PageFault { addr, pc },
            MemError::Unaligned { .. } | MemError::OutOfRange { .. } => {
                Fault::BadMemory { addr, pc }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::Asm;

    fn assemble(build: impl FnOnce(&mut Asm)) -> DecodedProgram {
        let mut asm = Asm::new();
        build(&mut asm);
        DecodedProgram::new(&asm.finish().unwrap())
    }

    fn run_program(build: impl FnOnce(&mut Asm)) -> (Machine, RegFile, Exit) {
        let program = assemble(build);
        let mut machine = Machine::new(CpuProfile::r3000(), 4096);
        let mut regs = RegFile::new(program.entry());
        let exit = machine.run(&program, &mut regs, 1_000_000);
        (machine, regs, exit)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (_, regs, exit) = run_program(|a| {
            a.li(Reg::T0, 5);
            a.addi(Reg::T1, Reg::T0, 7);
            a.mul(Reg::V0, Reg::T0, Reg::T1);
            a.halt();
        });
        assert_eq!(exit, Exit::Halt);
        assert_eq!(regs.get(Reg::V0), 60);
    }

    #[test]
    fn memory_roundtrip_through_guest_code() {
        let (machine, regs, exit) = run_program(|a| {
            a.li(Reg::T0, 0x123);
            a.li(Reg::A0, 64);
            a.sw(Reg::T0, Reg::A0, 0);
            a.lw(Reg::V0, Reg::A0, 0);
            a.halt();
        });
        assert_eq!(exit, Exit::Halt);
        assert_eq!(regs.get(Reg::V0), 0x123);
        assert_eq!(machine.mem().load(64).unwrap(), 0x123);
    }

    #[test]
    fn branch_loop_counts_down() {
        let (_, regs, exit) = run_program(|a| {
            a.li(Reg::T0, 10);
            a.li(Reg::T1, 0);
            let top = a.bind_new();
            a.addi(Reg::T1, Reg::T1, 1);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.halt();
        });
        assert_eq!(exit, Exit::Halt);
        assert_eq!(regs.get(Reg::T1), 10);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let (_, regs, exit) = run_program(|a| {
            let func = a.label();
            a.jal(func); // @0
            a.halt(); // @1
            a.bind(func);
            a.li(Reg::V0, 9); // @2
            a.jr(Reg::RA); // @3
        });
        assert_eq!(exit, Exit::Halt);
        assert_eq!(regs.get(Reg::V0), 9);
        assert_eq!(regs.get(Reg::RA), 1);
    }

    #[test]
    fn syscall_advances_pc_before_exiting() {
        let (_, regs, exit) = run_program(|a| {
            a.li(Reg::V0, 1);
            a.syscall(); // @1
            a.halt(); // @2
        });
        assert_eq!(exit, Exit::Syscall);
        assert_eq!(regs.pc(), 2, "resume lands after the syscall");
    }

    #[test]
    fn budget_exit_leaves_state_resumable() {
        let program = assemble(|a| {
            let top = a.bind_new();
            a.addi(Reg::T0, Reg::T0, 1);
            a.j(top);
        });
        let mut machine = Machine::new(CpuProfile::r3000(), 1024);
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, 10), Exit::Budget);
        let t0_at_pause = regs.get(Reg::T0);
        assert!(t0_at_pause > 0);
        // Resuming continues exactly where we left off.
        assert_eq!(machine.run(&program, &mut regs, 20), Exit::Budget);
        assert!(regs.get(Reg::T0) > t0_at_pause);
    }

    #[test]
    fn running_off_the_end_is_a_fault() {
        let (_, _, exit) = run_program(|a| {
            a.nop();
        });
        assert_eq!(exit, Exit::Fault(Fault::BadPc { pc: 1 }));
    }

    #[test]
    fn unaligned_store_faults_without_advancing() {
        let (_, regs, exit) = run_program(|a| {
            a.li(Reg::A0, 3);
            a.sw(Reg::T0, Reg::A0, 0);
            a.halt();
        });
        assert_eq!(exit, Exit::Fault(Fault::BadMemory { addr: 3, pc: 1 }));
        assert_eq!(regs.pc(), 1, "faulting instruction can be re-executed");
    }

    #[test]
    fn tas_is_illegal_without_hardware_support() {
        let (_, _, exit) = run_program(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0);
            a.halt();
        });
        assert!(matches!(exit, Exit::Fault(Fault::Illegal { pc: 1, .. })));
    }

    #[test]
    fn tas_sets_and_returns_old_value() {
        let program = assemble(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0);
            a.tas(Reg::V1, Reg::A0);
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i486(), 1024);
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(regs.get(Reg::V0), 0, "first TAS sees unlocked");
        assert_eq!(regs.get(Reg::V1), 1, "second TAS sees locked");
        assert_eq!(machine.mem().load(16).unwrap(), 1);
    }

    #[test]
    fn page_fault_reports_address_and_pc() {
        let program = assemble(|a| {
            a.li(Reg::A0, 512);
            a.lw(Reg::V0, Reg::A0, 0);
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::r3000(), 4096);
        machine.mem_mut().enable_paging(crate::PagingConfig::tiny());
        let mut regs = RegFile::new(0);
        let exit = machine.run(&program, &mut regs, u64::MAX);
        assert_eq!(exit, Exit::Fault(Fault::PageFault { addr: 512, pc: 1 }));
        // Service the fault and resume: the same instruction re-executes.
        machine.mem_mut().make_resident(512);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(regs.get(Reg::V0), 0);
    }

    #[test]
    fn atomic_bit_lifecycle_on_i860() {
        let program = assemble(|a| {
            a.begin_atomic(); // @0
            a.li(Reg::T0, 1);
            a.li(Reg::A0, 32);
            a.sw(Reg::T0, Reg::A0, 0); // store clears the bit
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i860(), 1024);
        let mut regs = RegFile::new(0);
        // Step through: after begin_atomic the bit is set.
        machine.step(&program, &mut regs);
        assert_eq!(machine.atomic_restart_pc(), Some(0));
        machine.step(&program, &mut regs);
        machine.step(&program, &mut regs);
        assert_eq!(machine.atomic_restart_pc(), Some(0));
        machine.step(&program, &mut regs); // the store
        assert_eq!(machine.atomic_restart_pc(), None);
    }

    #[test]
    fn atomic_bit_defers_the_deadline() {
        // A sequence that begins atomic and loops briefly: the deadline
        // cannot interrupt until the 32-cycle expiry clears the bit.
        let program = assemble(|a| {
            a.begin_atomic();
            let top = a.bind_new();
            a.addi(Reg::T0, Reg::T0, 1);
            a.j(top);
        });
        let mut machine = Machine::new(CpuProfile::i860(), 1024);
        let mut regs = RegFile::new(0);
        let exit = machine.run(&program, &mut regs, 1);
        assert_eq!(exit, Exit::Budget);
        assert!(
            machine.clock() >= 32,
            "interrupt was deferred to the expiry, clock={}",
            machine.clock()
        );
        assert_eq!(machine.atomic_restart_pc(), None, "bit expired");
    }

    #[test]
    fn begin_atomic_is_illegal_without_the_feature() {
        let (_, _, exit) = run_program(|a| {
            a.begin_atomic();
            a.halt();
        });
        assert!(matches!(exit, Exit::Fault(Fault::Illegal { pc: 0, .. })));
    }

    #[test]
    fn cycle_costs_follow_the_profile() {
        let program = assemble(|a| {
            a.li(Reg::T0, 1); // alu
            a.lw(Reg::T1, Reg::ZERO, 0); // load
            a.sw(Reg::T1, Reg::ZERO, 0); // store
            a.halt(); // alu
        });
        let mut machine = Machine::new(CpuProfile::cvax(), 1024);
        let mut regs = RegFile::new(0);
        machine.run(&program, &mut regs, u64::MAX);
        let c = *machine.profile().cost();
        assert_eq!(machine.clock(), u64::from(c.alu + c.load + c.store + c.alu));
    }

    #[test]
    fn access_log_records_loads_stores_and_rmws() {
        let program = assemble(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0); // @1: rmw
            a.lw(Reg::T0, Reg::A0, 4); // @2: load of 20
            a.sw(Reg::T0, Reg::A0, 8); // @3: store of 24
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i486(), 1024);
        machine.enable_access_log();
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        let log = machine.take_accesses();
        let summary: Vec<(CodeAddr, DataAddr, AccessKind, bool)> = log
            .iter()
            .map(|a| (a.pc, a.addr, a.kind, a.atomic))
            .collect();
        assert_eq!(
            summary,
            vec![
                (1, 16, AccessKind::Rmw, true),
                (2, 20, AccessKind::Load, false),
                (3, 24, AccessKind::Store, false),
            ]
        );
        assert!(machine.take_accesses().is_empty(), "drained");
        // Kernel-side RMW logging.
        machine.log_kernel_rmw(9, 16, 1);
        let log = machine.take_accesses();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, AccessKind::Rmw);
        assert!(log[0].atomic);
        assert_eq!(log[0].value, 1);
    }

    #[test]
    fn access_watch_filters_the_log_at_the_source() {
        let program = assemble(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0); // rmw @16: watched
            a.lw(Reg::T0, Reg::A0, 4); // load @20: dropped
            a.sw(Reg::T0, Reg::A0, 8); // store @24: dropped
            a.li(Reg::T1, 0);
            a.sw(Reg::T1, Reg::A0, 0); // store @16: watched
            a.lw(Reg::T2, Reg::A0, 0); // load @16 reads 0: quiescent, dropped
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i486(), 1024);
        machine.enable_access_log();
        machine.set_access_watch(&[16]);
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        machine.log_kernel_rmw(9, 24, 1); // dropped too
        let summary: Vec<(DataAddr, AccessKind)> = machine
            .take_accesses()
            .iter()
            .map(|a| (a.addr, a.kind))
            .collect();
        assert_eq!(
            summary,
            vec![(16, AccessKind::Rmw), (16, AccessKind::Store)]
        );
        // Clearing the watch restores full logging, quiescent loads included.
        machine.clear_access_watch();
        regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(machine.take_accesses().len(), 5);
    }

    #[test]
    fn access_log_carries_observed_values() {
        let program = assemble(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0); // rmw: old value 0
            a.tas(Reg::V1, Reg::A0); // rmw: old value 1
            a.lw(Reg::T0, Reg::A0, 0); // load observes 1
            a.li(Reg::T1, 0);
            a.sw(Reg::T1, Reg::A0, 0); // store writes 0
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i486(), 1024);
        machine.enable_access_log();
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        let values: Vec<(AccessKind, u32)> = machine
            .take_accesses()
            .iter()
            .map(|a| (a.kind, a.value))
            .collect();
        assert_eq!(
            values,
            vec![
                (AccessKind::Rmw, 0),
                (AccessKind::Rmw, 1),
                (AccessKind::Load, 1),
                (AccessKind::Store, 0),
            ]
        );
    }

    #[test]
    fn pc_profile_accumulates_cycles_per_pc() {
        let program = assemble(|a| {
            a.li(Reg::T0, 3); // @0: alu
            let top = a.bind_new();
            a.addi(Reg::T0, Reg::T0, -1); // @1: alu, 3 times
            a.bnez(Reg::T0, top); // @2: branch, 3 times
            a.halt(); // @3
        });
        let mut machine = Machine::new(CpuProfile::r3000(), 64);
        assert!(!machine.pc_profile_enabled());
        machine.enable_pc_profile();
        assert!(machine.pc_profile_enabled());
        assert!(machine.instrumented(), "pc profile forces instrumentation");
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        let hist = machine.pc_cycles();
        let c = *machine.profile().cost();
        assert_eq!(hist[0], u64::from(c.alu));
        assert_eq!(hist[1], 3 * u64::from(c.alu));
        assert_eq!(hist[2], 3 * u64::from(c.branch));
        assert_eq!(hist[3], u64::from(c.alu));
        assert_eq!(hist.iter().sum::<u64>(), machine.clock());
        // The histogram's sum matches the cost model's static account.
        let static_cost: u64 = (0..4u32)
            .map(|pc| c.inst_cycles(&program.fetch(pc).unwrap()))
            .sum();
        assert_eq!(static_cost, hist[0] + hist[1] / 3 + hist[2] / 3 + hist[3]);
        // Disabled machines report an empty histogram.
        assert!(Machine::new(CpuProfile::r3000(), 64).pc_cycles().is_empty());
    }

    #[test]
    fn access_log_marks_i860_atomic_window() {
        let program = assemble(|a| {
            a.li(Reg::A0, 32);
            a.begin_atomic();
            a.lw(Reg::V0, Reg::A0, 0); // inside the window
            a.li(Reg::T0, 1);
            a.sw(Reg::T0, Reg::A0, 0); // committing store, clears the bit
            a.lw(Reg::T1, Reg::A0, 0); // outside the window
            a.halt();
        });
        let mut machine = Machine::new(CpuProfile::i860(), 1024);
        machine.enable_access_log();
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        let atomics: Vec<bool> = machine.take_accesses().iter().map(|a| a.atomic).collect();
        assert_eq!(atomics, vec![true, true, false]);
    }

    #[test]
    fn charge_advances_clock() {
        let mut machine = Machine::new(CpuProfile::r3000(), 64);
        machine.charge(123);
        assert_eq!(machine.clock(), 123);
        assert!((machine.elapsed_micros() - 123.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_exactly_at_the_deadline_outside_an_atomic_window() {
        // The amortized batch must not let the clock slip past a deadline
        // it lands on exactly: once clock >= deadline, Budget fires before
        // another instruction retires.
        let program = assemble(|a| {
            let top = a.bind_new();
            a.nop();
            a.j(top);
        });
        let mut machine = Machine::new(CpuProfile::r3000(), 64);
        let mut regs = RegFile::new(0);
        assert_eq!(machine.run(&program, &mut regs, 10), Exit::Budget);
        let clock = machine.clock();
        assert!(clock >= 10);
        let retired = machine.instructions_retired();
        // A deadline exactly equal to the current clock makes no progress.
        assert_eq!(machine.run(&program, &mut regs, clock), Exit::Budget);
        assert_eq!(machine.clock(), clock);
        assert_eq!(machine.instructions_retired(), retired);
        // A deadline one cycle later retires exactly one instruction
        // (every r3000 instruction costs at least one cycle).
        assert_eq!(machine.run(&program, &mut regs, clock + 1), Exit::Budget);
        assert_eq!(machine.instructions_retired(), retired + 1);
    }

    #[test]
    fn preemption_exactly_at_the_deadline_inside_an_atomic_window() {
        // A deadline that comes due exactly while the i860 restart bit is
        // set stays deferred: the sequence runs through its committing
        // store, and only then is the (already-passed) deadline honored.
        let program = assemble(|a| {
            a.li(Reg::A0, 32); // @0
            a.begin_atomic(); // @1
            a.li(Reg::T0, 1); // @2
            a.sw(Reg::T0, Reg::A0, 0); // @3: clears the bit
            let top = a.bind_new();
            a.j(top); // @4: spin forever
        });
        let mut machine = Machine::new(CpuProfile::i860(), 1024);
        let mut regs = RegFile::new(0);
        machine.step(&program, &mut regs); // li a0
        machine.step(&program, &mut regs); // begin_atomic
        assert!(machine.atomic_restart_pc().is_some());
        let deadline = machine.clock(); // due *now*, inside the window
        assert_eq!(machine.run(&program, &mut regs, deadline), Exit::Budget);
        assert_eq!(machine.atomic_restart_pc(), None);
        assert_eq!(machine.mem().load(32).unwrap(), 1, "store committed");
        assert_eq!(regs.pc(), 4, "stopped right after the sequence");
    }

    #[test]
    fn fast_and_instrumented_loops_retire_identical_streams() {
        // Chop a mixed workload into tiny quanta and replay it on both
        // monomorphized loop variants: every (exit, clock, pc, register)
        // observation must match bit for bit.
        let program = assemble(|a| {
            a.li(Reg::A0, 16);
            a.tas(Reg::V0, Reg::A0);
            a.li(Reg::T0, 4);
            let top = a.bind_new();
            a.sw(Reg::T0, Reg::A0, 4);
            a.lw(Reg::T1, Reg::A0, 4);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.halt();
        });
        let replay = |force: bool| {
            let mut machine = Machine::new(CpuProfile::i486(), 1024);
            machine.set_force_instrumented(force);
            assert_eq!(machine.instrumented(), force);
            let mut regs = RegFile::new(0);
            let mut observations = Vec::new();
            loop {
                let exit = machine.run(&program, &mut regs, machine.clock() + 3);
                observations.push((exit, machine.clock(), regs.pc(), regs.get(Reg::T1)));
                if exit != Exit::Budget {
                    break;
                }
            }
            observations.push((
                Exit::Halt,
                machine.instructions_retired(),
                regs.pc(),
                machine.mem().load(20).unwrap(),
            ));
            observations
        };
        assert_eq!(replay(false), replay(true));
    }

    #[test]
    fn instruction_mix_is_opt_in_but_retired_count_is_not() {
        let program = assemble(|a| {
            a.li(Reg::T0, 1);
            a.nop();
            a.halt();
        });
        let mut fast = Machine::new(CpuProfile::r3000(), 64);
        let mut regs = RegFile::new(0);
        assert_eq!(fast.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(fast.instructions_retired(), 3);
        assert_eq!(fast.instruction_mix(), [0; Opcode::COUNT]);

        let mut mixed = Machine::new(CpuProfile::r3000(), 64);
        mixed.enable_mix();
        assert!(mixed.mix_enabled());
        let mut regs = RegFile::new(0);
        assert_eq!(mixed.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(mixed.instructions_retired(), 3);
        let mix = mixed.instruction_mix();
        assert_eq!(mix[Opcode::Li.index()], 1);
        assert_eq!(mix[Opcode::Nop.index()], 1);
        assert_eq!(mix[Opcode::Halt.index()], 1);
        assert_eq!(mix.iter().sum::<u64>(), 3);
    }

    #[test]
    fn checkpoint_restore_rewinds_scalars_memory_and_fingerprint() {
        let program = assemble(|asm| {
            asm.li(Reg::T0, 16);
            asm.li(Reg::T1, 7);
            asm.sw(Reg::T1, Reg::T0, 0);
            asm.tas(Reg::T2, Reg::T0);
            asm.halt();
        });
        let mut machine = Machine::new(CpuProfile::i486(), 256);
        machine.mem_mut().enable_dirty(64);
        assert!(
            machine.instrumented(),
            "dirty tracking forces instrumentation"
        );
        let mut regs = RegFile::new(program.entry());
        let cp = machine.checkpoint();
        let fp0 = machine.mem().fingerprint().unwrap();
        let regs0 = regs.clone();
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(machine.mem().load(16).unwrap(), 1, "tas wrote last");
        assert!(machine.clock() > 0);
        let replayed = machine.restore(&cp);
        assert_eq!(replayed, 2, "sw and tas each logged one undo entry");
        assert_eq!(machine.mem().load(16).unwrap(), 0);
        assert_eq!(machine.mem().fingerprint().unwrap(), fp0);
        assert_eq!(
            machine.mem().fingerprint().unwrap(),
            machine.mem().fingerprint_scan(64)
        );
        assert_eq!(machine.clock(), 0);
        assert_eq!(machine.instructions_retired(), 0);
        // Registers are the caller's to restore; rerunning from the saved
        // file retires the identical stream.
        regs = regs0;
        assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        assert_eq!(machine.mem().load(16).unwrap(), 1);
    }
}
