//! The threaded-code translation tier: hot guest traces compiled into
//! straight-line host closures, with exact deoptimization back to the
//! interpreter.
//!
//! # How it works
//!
//! Block discovery comes from [`ras_isa::BlockMap`]. Each basic-block
//! leader is a potential *trace head*: once the dispatcher has entered a
//! leader [`hot-threshold`](TranslationCache::hot_threshold) times, the
//! translator walks forward from it — across fall-throughs, direct
//! jumps and calls, and through conditional branches along a predicted
//! direction (backward = taken, forward = fall-through, the classic
//! loop heuristic) — building one *superblock* of micro-ops. The whole
//! trace becomes a single boxed `Fn(&mut Machine, &mut RegFile) ->
//! BlockExit` closure. Traces are chained by successor block id, so a
//! loop whose body is one trace re-enters itself without ever returning
//! to a dispatch table.
//!
//! # The exactness contract
//!
//! Translated execution must be indistinguishable from the interpreter
//! at every point the kernel can observe a thread: the clock, retired
//! count, registers, memory, and restart bit must match exactly at
//! every [`Exit`] and at every quantum boundary. The tier gets this
//! from four rules:
//!
//! 1. **Worst-case fit check.** A trace only runs when its full static
//!    cycle cost fits inside the deadline
//!    (`clock + trace.cycles <= deadline`); otherwise the dispatcher
//!    falls back to the interpreter's exact per-instruction loop for
//!    the tail of the quantum. `Exit::Budget` therefore fires at
//!    precisely the interpreter's boundary.
//! 2. **Prefix-sum fixups.** Side exits (mispredicted branches) and
//!    memory faults carry precomputed prefix cycle/retire sums, so a
//!    trace that stops after `k` instructions charges exactly what the
//!    interpreter would have — including the faulting instruction,
//!    which the interpreter charges *before* touching memory.
//! 3. **Deopt at observable instructions.** `syscall`, `halt`,
//!    `begin_atomic` (the i860 restart bit), and `tas` on profiles
//!    without hardware interlock end trace construction; the closure
//!    hands the pc back and the interpreter executes the instruction
//!    itself. While the restart bit is set, everything runs
//!    interpreted, so the 32-cycle expiry and store-clears-bit rules
//!    are literally the interpreter's own.
//! 4. **Full instrumentation wins; telemetry runs translated.** A
//!    collector that needs every retired instruction (mix, trace ring,
//!    PC profile, dirty tracking, an *unfiltered* access log) routes
//!    the whole call to [`Machine::run`]'s instrumented loop. A
//!    watch-filtered access log — the streaming-telemetry level — runs
//!    translated: each memory micro-op carries its source pc and
//!    prefix-cycle sum, so a watched access is logged with exactly the
//!    pc, clock, kind, atomicity, and value the interpreter would have
//!    recorded (the fused [`Op::Rmw`] keeps a second fixup, `sinfo`,
//!    purely so the elided store logs at the `sw`'s own pc and clock).
//!    Traces only run while the restart bit is clear, so plain loads
//!    and stores always log `atomic: false` and `tas` always logs an
//!    atomic read-modify-write — the interpreter's own rules.
//!
//! Software restartable sequences (the paper's §3 mechanisms and the
//! rseq ABI) need *no* deopt: the kernel only inspects a thread's pc at
//! suspension, and every suspension happens at an interpreter-exact
//! boundary, so traces may freely cross sequence boundaries. Only the
//! i860 restart *bit* is machine state, and `begin_atomic` deopts.
//!
//! # Cache invalidation
//!
//! Guest code is Harvard-style here (instructions live in a
//! [`DecodedProgram`], not in data memory), so stores cannot modify
//! code at runtime and no store-time invalidation check is needed. For
//! hosts that patch code between runs, [`TranslationCache::invalidate`]
//! drops every trace whose source range covers a patched pc, and
//! [`TranslationCache::matches`] fingerprints the program so a stale
//! cache is rejected rather than silently applied.

use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use ras_isa::{AluOp, BlockMap, CodeAddr, Cond, DecodedProgram, Inst, Reg};

use crate::machine::{AccessKind, Exit, Fault, Machine, LEVEL_FAST, LEVEL_FULL, LEVEL_TELEMETRY};
use crate::memory::MemError;
use crate::profile::{CostModel, CpuProfile};
use crate::regfile::RegFile;

/// Which execution engine a kernel (or any other driver of
/// [`Machine::run`]) should use for guest code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The predecoded interpreter ([`Machine::run`]): the reference
    /// engine, always exact.
    #[default]
    Interpreter,
    /// The threaded-code translation tier
    /// ([`Machine::run_translated`]): compiles hot traces to host
    /// closures, deoptimizing to the interpreter at every observable
    /// point. Architecturally indistinguishable from the interpreter.
    Translated,
}

impl EngineKind {
    /// Parses a command-line spelling (`interp`/`interpreter` or
    /// `translated`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "interp" | "interpreter" => Some(EngineKind::Interpreter),
            "translated" => Some(EngineKind::Translated),
            _ => None,
        }
    }

    /// The canonical command-line spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interpreter => "interp",
            EngineKind::Translated => "translated",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a trace handed control back to the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeoptReason {
    /// `begin_atomic`: the i860 restart bit is machine-observable
    /// state, so the whole hardware sequence runs interpreted.
    Sequence,
    /// `syscall`: the kernel takes over.
    Syscall,
    /// `halt`.
    Halt,
    /// An instruction the profile cannot execute (`tas` without
    /// hardware interlock); the interpreter raises the exact fault.
    Unsupported,
}

/// What a compiled trace did with control, returned by its closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// The trace ran to an edge whose successor trace head is already
    /// known: the carried block id, or [`NO_BLOCK`] if the next pc is
    /// not a leader (the dispatcher falls back to the interpreter).
    Next(u32),
    /// The trace ended at an indirect jump; the pc is set and the
    /// dispatcher must look the successor up.
    Lookup,
    /// The trace stopped at a deoptimization point; the pc names the
    /// uncompiled instruction for the interpreter to execute.
    Interp,
    /// A memory access faulted `k` instructions in; clock, retired
    /// count, and pc have been fixed up to the interpreter-exact state.
    Fault(Fault),
}

/// Sentinel successor id in [`BlockExit::Next`]: the next pc is not a
/// block leader, so there is nothing to chain to.
pub const NO_BLOCK: u32 = u32::MAX;

/// Heat value marking a head whose trace cannot be compiled (its first
/// instruction is a deopt point); the dispatcher stops trying.
const DEAD: u32 = u32::MAX;

/// Maximum source instructions in one trace. Bounds compile time and
/// the worst-case cycle charge a single fit check must absorb; the
/// bound is only consulted between instructions, so correctness never
/// depends on it. Generous enough that a loop body unrolls many times,
/// amortizing the per-entry dispatch cost.
const TRACE_CAP: u32 = 512;

/// Default entry count at which a trace head is compiled.
const DEFAULT_HOT_THRESHOLD: u32 = 8;

/// One straight-line micro-op. Register numbers are raw `u8` indices;
/// the translator never emits a write to index 0 (`$zero`), so the
/// executor skips the hardwired-zero guard. ALU and branch semantics
/// are carried as [`AluOp`]/[`Cond`] payloads whose `apply`/`holds`
/// inline into the executor's match — direct dispatch, no indirect
/// calls.
#[derive(Clone, Copy, PartialEq)]
enum Op {
    /// `rd <- imm`.
    Li { rd: u8, imm: u32 },
    /// `rd <- rs op rt`.
    Alu { op: AluOp, rd: u8, rs: u8, rt: u8 },
    /// `rd <- rs op imm`.
    AluI { op: AluOp, rd: u8, rs: u8, imm: u32 },
    /// `rd <- mem[rs + off]`; `info` indexes the fault fixup table.
    Lw {
        rd: u8,
        base: u8,
        off: u32,
        info: u32,
    },
    /// A load whose destination is `$zero`: the access (and its
    /// faults) still happen, the value is discarded.
    LwZ { base: u8, off: u32, info: u32 },
    /// `mem[base + off] <- rs`.
    Sw {
        rs: u8,
        base: u8,
        off: u32,
        info: u32,
    },
    /// Fused read-modify-write: `rd <- mem[base + off] op imm;
    /// mem[base + off] <- rd` — the `lw; alui; sw` triple (same
    /// register, same address) the paper's counter fast paths are made
    /// of. One address computation and one residency/alignment check:
    /// if the load succeeds, the store to the same word cannot fault,
    /// so the load's fixup (`info`) is the only one needed for faults.
    /// `sinfo` is the elided store's fixup, kept so the telemetry level
    /// can stamp the store's access log entry with the store's own pc
    /// and clock, exactly as the interpreter does.
    Rmw {
        op: AluOp,
        rd: u8,
        base: u8,
        off: u32,
        imm: u32,
        info: u32,
        sinfo: u32,
    },
    /// Hardware test-and-set; `rd` 0 means the old value is discarded.
    Tas { rd: u8, base: u8, info: u32 },
    /// `rd <- value` — the link half of an inlined `jal`.
    Link { rd: u8, value: u32 },
    /// Guarded return of an inlined call: the walk followed a `jal`
    /// into the callee and predicted its `jr` returns to the pc after
    /// the call. When `rs` holds `predict` execution simply continues
    /// inline; otherwise the jump was a genuine indirect transfer and
    /// the trace exits through the fixup at `info` with the dynamic
    /// target as the new pc ([`BlockExit::Lookup`]).
    RetGuard { rs: u8, predict: u32, info: u32 },
    /// Side exit of a predicted branch: leave the trace when `cond`
    /// holds on `(rs, rt)` (the branch's own condition for a
    /// predicted-fall-through branch, its negation for a
    /// predicted-taken one); `info` indexes the exit fixup table.
    ExitIf {
        cond: Cond,
        rs: u8,
        rt: u8,
        info: u32,
    },
    /// Fused `alui` + side exit: `rd <- rs op imm`, then leave the
    /// trace when `cond` holds on `(rd, rt)` — the decrement-and-loop
    /// idiom at the bottom of every counted loop.
    AluIExit {
        op: AluOp,
        rd: u8,
        rs: u8,
        imm: u32,
        cond: Cond,
        rt: u8,
        info: u32,
    },
}

/// Fixup for a memory op that may fault `k` instructions into a trace:
/// prefix sums *include* the faulting instruction, because the
/// interpreter charges and retires it before touching memory.
#[derive(Clone, Copy)]
struct MemInfo {
    pc: CodeAddr,
    prefix_cycles: u64,
    prefix_retired: u32,
}

/// Fixup for a branch side exit: where execution continues, the
/// successor trace head if that pc is a leader, and the prefix sums up
/// to and including the branch. A [`Op::RetGuard`] exit reuses the
/// prefix sums but ignores `pc`/`next` — its continuation is dynamic.
#[derive(Clone, Copy)]
struct ExitInfo {
    pc: CodeAddr,
    next: u32,
    prefix_cycles: u64,
    prefix_retired: u32,
}

/// How a trace ends when every micro-op ran (no side exit, no fault).
#[derive(Clone, Copy)]
enum Term {
    /// Continue at `pc`, whose trace head (if any) is `next`.
    Next { pc: CodeAddr, next: u32 },
    /// Indirect jump through `rs`, optionally linking `link_value`
    /// into `link_rd` first (`jalr`); 0 means no link (`jr`).
    Indirect {
        link_rd: u8,
        link_value: u32,
        rs: u8,
    },
    /// Deopt: the interpreter must execute the instruction at `pc`.
    Interp { pc: CodeAddr },
}

/// The compiled form of a trace: a host closure that mutates machine
/// state directly and reports how control left the trace.
type TraceBody = Box<dyn Fn(&mut Machine, &mut RegFile) -> BlockExit + Send + Sync>;

/// One compiled trace: its closure plus the metadata the dispatcher's
/// fit check and the cache's invalidation sweep need.
pub(crate) struct CompiledBlock {
    /// Worst-case cycles the closure can charge (the full-trace sum;
    /// side exits charge less). The dispatcher's deadline fit check
    /// uses this to keep `Exit::Budget` exact.
    cycles: u64,
    /// Why the trace deopts at its end, if it ends at a deopt point.
    deopt: Option<DeoptReason>,
    /// Ids of every basic block this trace compiled instructions from,
    /// for invalidation.
    covers: Box<[u32]>,
    /// The trace body. Returns only after updating clock, retired
    /// count, and pc to interpreter-exact values.
    body: TraceBody,
}

impl fmt::Debug for CompiledBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledBlock")
            .field("cycles", &self.cycles)
            .field("deopt", &self.deopt)
            .field("covers", &self.covers)
            .finish_non_exhaustive()
    }
}

/// Counters describing what the translation tier did: how much code it
/// compiled, how work split between translated and interpreted
/// execution, and why every deoptimization happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct TranslationStats {
    /// Basic blocks discovered in the program (trace-head candidates).
    pub blocks_discovered: u64,
    /// Traces compiled to closures.
    pub blocks_compiled: u64,
    /// Compiled traces dropped by [`TranslationCache::invalidate`].
    pub invalidations: u64,
    /// Compiled-trace entries (chained entries count individually).
    pub block_entries: u64,
    /// Instructions retired inside compiled traces.
    pub translated_instructions: u64,
    /// Cycles charged inside compiled traces.
    pub translated_cycles: u64,
    /// Instructions retired by the interpreter while the translated
    /// engine was driving (deopt windows, quantum tails, cold code).
    pub interpreted_instructions: u64,
    /// Cycles charged by the interpreter while the translated engine
    /// was driving.
    pub interpreted_cycles: u64,
    /// Chain breaks at a `begin_atomic` (hardware sequence entry).
    pub deopt_sequence: u64,
    /// Chain breaks at a `syscall`.
    pub deopt_syscall: u64,
    /// Chain breaks at a `halt`.
    pub deopt_halt: u64,
    /// Chain breaks at an instruction the profile cannot execute.
    pub deopt_unsupported: u64,
    /// Traces that ended early on a memory fault.
    pub deopt_fault: u64,
    /// Chain breaks because the next trace's worst-case cycles did not
    /// fit before the deadline (quantum tail).
    pub deopt_deadline: u64,
    /// Chain breaks at a leader whose trace is not compiled yet.
    pub deopt_cold: u64,
    /// Whole calls routed to the instrumented interpreter loop.
    pub deopt_instrumented: u64,
}

impl TranslationStats {
    /// Total deoptimizations across every reason.
    pub fn deopts(&self) -> u64 {
        self.deopt_sequence
            + self.deopt_syscall
            + self.deopt_halt
            + self.deopt_unsupported
            + self.deopt_fault
            + self.deopt_deadline
            + self.deopt_cold
            + self.deopt_instrumented
    }
}

/// Per-program translation state: the block map, heat counters, and
/// compiled traces. Built once per program by the kernel (or a test)
/// and threaded into every [`Machine::run_translated`] call.
///
/// Cloning is cheap-ish: compiled traces are shared via [`Arc`], so a
/// forked kernel (the model checker's checkpoint replay) reuses them.
#[derive(Clone)]
pub struct TranslationCache {
    map: BlockMap,
    bodies: Vec<Option<Arc<CompiledBlock>>>,
    heat: Vec<u32>,
    threshold: u32,
    cost: CostModel,
    has_interlocked: bool,
    code_len: usize,
    fingerprint: u64,
    stats: TranslationStats,
}

impl fmt::Debug for TranslationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TranslationCache")
            .field("blocks", &self.map.len())
            .field("compiled", &self.compiled())
            .field("threshold", &self.threshold)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

fn code_fingerprint(program: &DecodedProgram) -> u64 {
    let mut h = DefaultHasher::new();
    program.entry().hash(&mut h);
    program.code().hash(&mut h);
    h.finish()
}

impl TranslationCache {
    /// Builds an empty cache for `program` under `profile`'s cost model.
    /// `extra_leaders` adds entry points static discovery cannot see —
    /// kernels pass declared restartable-sequence boundaries, where
    /// rollback can resume a thread.
    pub fn new(
        program: &DecodedProgram,
        profile: &CpuProfile,
        extra_leaders: &[CodeAddr],
    ) -> TranslationCache {
        let map = BlockMap::new(program, extra_leaders);
        let n = map.len();
        TranslationCache {
            map,
            bodies: vec![None; n],
            heat: vec![0; n],
            threshold: DEFAULT_HOT_THRESHOLD.min(DEAD - 1),
            cost: *profile.cost(),
            has_interlocked: profile.has_interlocked(),
            code_len: program.len(),
            fingerprint: code_fingerprint(program),
            stats: TranslationStats {
                blocks_discovered: n as u64,
                ..TranslationStats::default()
            },
        }
    }

    /// Sets the entry count at which a trace head compiles (clamped to
    /// at least 1). Tests use 1 to force immediate compilation.
    pub fn with_threshold(mut self, threshold: u32) -> TranslationCache {
        self.threshold = threshold.clamp(1, DEAD - 1);
        self
    }

    /// The entry count at which a trace head compiles.
    pub fn hot_threshold(&self) -> u32 {
        self.threshold
    }

    /// Basic blocks discovered (trace-head candidates).
    pub fn blocks(&self) -> usize {
        self.map.len()
    }

    /// Traces currently compiled.
    pub fn compiled(&self) -> usize {
        self.bodies.iter().filter(|b| b.is_some()).count()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> TranslationStats {
        self.stats
    }

    /// Whether this cache was built from exactly this program (length
    /// and content fingerprint). The dispatcher debug-asserts it;
    /// long-lived hosts should check it before reusing a cache.
    pub fn matches(&self, program: &DecodedProgram) -> bool {
        self.code_len == program.len() && self.fingerprint == code_fingerprint(program)
    }

    /// Drops every compiled trace that included the instruction at
    /// `pc` — the hook a host that patches code between runs must call,
    /// since traces span many blocks. Heat is reset so the patched
    /// region can recompile. Returns the number of traces dropped.
    pub fn invalidate(&mut self, pc: CodeAddr) -> usize {
        let Some(target) = self.map.containing(pc) else {
            return 0;
        };
        let mut dropped = 0;
        for i in 0..self.bodies.len() {
            let hit = matches!(&self.bodies[i], Some(cb) if cb.covers.contains(&target));
            if hit {
                self.bodies[i] = None;
                self.heat[i] = 0;
                dropped += 1;
            }
        }
        self.heat[target as usize] = 0;
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Drops every compiled trace and resets all heat.
    pub fn invalidate_all(&mut self) -> usize {
        let mut dropped = 0;
        for i in 0..self.bodies.len() {
            if self.bodies[i].take().is_some() {
                dropped += 1;
            }
            self.heat[i] = 0;
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }

    #[inline(always)]
    fn body(&self, id: u32) -> Option<&CompiledBlock> {
        self.bodies[id as usize].as_deref()
    }

    /// Whether the dispatcher should bother handing control back for
    /// this head: compiled already, or still cold but compilable.
    #[inline(always)]
    fn runnable(&self, id: u32) -> bool {
        self.bodies[id as usize].is_some() || self.heat[id as usize] != DEAD
    }

    /// Records one entry at a cold head and compiles its trace once the
    /// threshold is reached. Heads whose trace cannot be compiled (the
    /// first instruction is a deopt point) are marked dead.
    fn heat(&mut self, id: u32, program: &DecodedProgram) {
        let i = id as usize;
        if self.bodies[i].is_some() || self.heat[i] == DEAD {
            return;
        }
        self.heat[i] = (self.heat[i] + 1).min(DEAD - 1);
        if self.heat[i] >= self.threshold {
            match compile_trace(
                program,
                &self.map,
                id,
                &self.cost,
                self.has_interlocked,
                TRACE_CAP,
            ) {
                Some(cb) => {
                    self.stats.blocks_compiled += 1;
                    self.bodies[i] = Some(Arc::new(cb));
                }
                None => self.heat[i] = DEAD,
            }
        }
    }
}

fn reg8(r: Reg) -> u8 {
    r.index() as u8
}

/// The trace head id for `pc`, or [`NO_BLOCK`] if `pc` is mid-block or
/// past the end of code.
fn leader_or_none(map: &BlockMap, pc: CodeAddr) -> u32 {
    map.leader_at(pc).unwrap_or(NO_BLOCK)
}

/// Whether straight-line execution from `pc` runs into a `syscall` or
/// `halt` (or off the end of code) within `k` instructions, following
/// unconditional jumps. Such a path is a slow path by construction —
/// futex waits, yields, thread exit — so the branch predictor steers
/// traces away from it: a forward branch normally predicts
/// fall-through, but not *into* an imminent deopt (the lock-acquire
/// success check `beq got, taken` guards exactly this shape, and
/// mispredicting it costs the whole loop its unrolling).
/// Whether `op` writes register `r`. Conservative for `Tas { rd: 0 }`
/// (no architectural write, reported as writing `$zero`) — callers only
/// use this to *invalidate* facts, so over-reporting is safe.
fn writes(op: &Op, r: u8) -> bool {
    match *op {
        Op::Li { rd, .. }
        | Op::Alu { rd, .. }
        | Op::AluI { rd, .. }
        | Op::Lw { rd, .. }
        | Op::Rmw { rd, .. }
        | Op::Tas { rd, .. }
        | Op::Link { rd, .. }
        | Op::AluIExit { rd, .. } => rd == r,
        Op::LwZ { .. } | Op::Sw { .. } | Op::ExitIf { .. } | Op::RetGuard { .. } => false,
    }
}

/// Whether pushing `cand` would be architecturally invisible: an
/// identical op earlier in the trace already left exactly this value in
/// the destination register and none of the involved registers have
/// been written since. Only register-to-register ALU ops and immediate
/// loads qualify — they are deterministic functions of their sources
/// (loads are not: memory can change under them) — and only when the
/// destination is not also a source (a self-dependent op like
/// `add rd, rd, k` advances its input and is never idempotent). The
/// unrolled rounds of a loop are full of these: base-address moves and
/// constant reloads recomputed every iteration.
fn op_is_redundant(ops: &[Op], cand: &Op) -> bool {
    let (rd, s1, s2) = match *cand {
        Op::Li { rd, .. } => (rd, rd, rd),
        Op::Alu { rd, rs, rt, .. } if rd != rs && rd != rt => (rd, rs, rt),
        Op::AluI { rd, rs, .. } if rd != rs => (rd, rs, rs),
        _ => return false,
    };
    for op in ops.iter().rev() {
        if op == cand {
            return true;
        }
        if writes(op, rd) || writes(op, s1) || writes(op, s2) {
            return false;
        }
    }
    false
}

/// Whether a side exit on `cond (rs, rt)` is provably untaken: an
/// earlier op in the trace already exited on the same condition over
/// the same registers, neither register has been written since, and
/// execution reaches this point only because that exit did not fire.
/// The guest idiom producing this shape is a restartable Test-And-Set
/// followed by the acquire-success check — both branch on the value the
/// sequence's load returned.
fn exit_is_redundant(ops: &[Op], cond: Cond, rs: u8, rt: u8) -> bool {
    for op in ops.iter().rev() {
        match *op {
            Op::ExitIf {
                cond: c,
                rs: r1,
                rt: r2,
                ..
            } if c == cond && r1 == rs && r2 == rt => return true,
            // The fused exit tests its condition *after* writing `rd`,
            // so the fact holds for (rd, rt) — check it before the
            // write invalidates.
            Op::AluIExit {
                cond: c,
                rd,
                rt: r2,
                ..
            } if c == cond && rd == rs && r2 == rt => return true,
            _ => {}
        }
        if writes(op, rs) || writes(op, rt) {
            return false;
        }
    }
    false
}

fn deopts_soon(program: &DecodedProgram, mut pc: CodeAddr, k: u32) -> bool {
    for _ in 0..k {
        match program.fetch(pc) {
            None | Some(Inst::Syscall | Inst::Halt) => return true,
            Some(Inst::J { target }) => pc = target,
            Some(Inst::Branch { .. } | Inst::Jr { .. } | Inst::Jalr { .. } | Inst::Jal { .. }) => {
                return false
            }
            Some(_) => pc += 1,
        }
    }
    false
}

/// Charges the interpreter-exact prefix state for a memory fault `k`
/// instructions into a trace and produces the exit.
fn mem_fault_exit(
    m: &mut Machine,
    regs: &mut RegFile,
    info: &MemInfo,
    addr: u32,
    e: MemError,
) -> BlockExit {
    m.clock += info.prefix_cycles;
    m.retired += u64::from(info.prefix_retired);
    regs.set_pc(info.pc);
    BlockExit::Fault(Machine::mem_fault(e, addr, info.pc))
}

/// Compiles the superblock trace starting at head block `head`.
///
/// Walks forward from the head's leader: straight-line instructions
/// become micro-ops, direct jumps and calls are followed (the jump
/// itself becomes pure cycle accounting, a call also links), a `jr`
/// returning from a call the walk itself inlined continues at the
/// predicted return pc behind a run-time guard ([`Op::RetGuard`]), and
/// conditional branches continue along the predicted direction
/// (backward target = taken, forward = fall-through) with an exact side
/// exit for the other. Loops *unroll*: the walk keeps going through
/// already-visited blocks until `cap` instructions, so one trace entry
/// covers many loop iterations and the per-entry dispatch cost
/// amortizes away; when the walk is back at the head with no room for
/// another full round, the trace ends there and chains to itself. The
/// walk also ends at an indirect jump or a deopt instruction.
///
/// Returns `None` when the head's first instruction is itself a deopt
/// point — such heads stay interpreted forever.
fn compile_trace(
    program: &DecodedProgram,
    map: &BlockMap,
    head: u32,
    cost: &CostModel,
    has_interlocked: bool,
    cap: u32,
) -> Option<CompiledBlock> {
    let head_pc = map.block(head).start;
    let mut ops: Vec<Op> = Vec::new();
    let mut mems: Vec<MemInfo> = Vec::new();
    let mut exits: Vec<ExitInfo> = Vec::new();
    let mut covers: Vec<u32> = vec![head];
    let mut cycles: u64 = 0;
    let mut count: u32 = 0;
    let mut deopt: Option<DeoptReason> = None;
    let mut pc = head_pc;
    // Unroll bookkeeping: instructions in the first round back to the
    // head, so the walk stops at the head exactly when another full
    // round would overshoot the cap.
    let mut round_len: u32 = 0;
    // Compile-time shadow of the return-address stack: every inlined
    // `jal` pushes its return pc, and a `jr` with a pending entry is
    // compiled as a guarded inline return instead of ending the trace.
    let mut rets: Vec<CodeAddr> = Vec::new();

    let term = loop {
        if count > 0 {
            if pc as usize >= program.len() {
                break Term::Next { pc, next: NO_BLOCK };
            }
            let lb = map.leader_at(pc);
            if pc == head_pc {
                if round_len == 0 {
                    round_len = count;
                }
                if count.saturating_add(round_len) > cap {
                    break Term::Next { pc, next: head };
                }
            } else if count >= cap {
                break Term::Next {
                    pc,
                    next: lb.unwrap_or(NO_BLOCK),
                };
            }
            if let Some(b) = lb {
                if !covers.contains(&b) {
                    covers.push(b);
                }
            }
        }
        let inst = program
            .fetch(pc)
            .expect("trace walk only visits in-range pcs");
        match inst {
            Inst::Li { rd, imm } => {
                cycles += u64::from(cost.alu);
                count += 1;
                if !rd.is_zero() {
                    let cand = Op::Li {
                        rd: reg8(rd),
                        imm: imm as u32,
                    };
                    if !op_is_redundant(&ops, &cand) {
                        ops.push(cand);
                    }
                }
                pc += 1;
            }
            Inst::Alu { op, rd, rs, rt } => {
                cycles += u64::from(cost.alu);
                count += 1;
                if !rd.is_zero() {
                    let cand = Op::Alu {
                        op,
                        rd: reg8(rd),
                        rs: reg8(rs),
                        rt: reg8(rt),
                    };
                    if !op_is_redundant(&ops, &cand) {
                        ops.push(cand);
                    }
                }
                pc += 1;
            }
            Inst::AluI { op, rd, rs, imm } => {
                cycles += u64::from(cost.alu);
                count += 1;
                if !rd.is_zero() {
                    let cand = Op::AluI {
                        op,
                        rd: reg8(rd),
                        rs: reg8(rs),
                        imm: imm as u32,
                    };
                    if !op_is_redundant(&ops, &cand) {
                        ops.push(cand);
                    }
                }
                pc += 1;
            }
            Inst::Lw { rd, base, off } => {
                cycles += u64::from(cost.load);
                count += 1;
                mems.push(MemInfo {
                    pc,
                    prefix_cycles: cycles,
                    prefix_retired: count,
                });
                let info = (mems.len() - 1) as u32;
                if rd.is_zero() {
                    ops.push(Op::LwZ {
                        base: reg8(base),
                        off: off as u32,
                        info,
                    });
                } else {
                    ops.push(Op::Lw {
                        rd: reg8(rd),
                        base: reg8(base),
                        off: off as u32,
                        info,
                    });
                }
                pc += 1;
            }
            Inst::Sw { rs, base, off } => {
                cycles += u64::from(cost.store);
                count += 1;
                // Peephole: `lw rd,(b,o); alui rd,rd,k; sw rd,(b,o)`
                // (with `b != rd`, so the address is unchanged) fuses
                // into one read-modify-write op — the counter idiom.
                // The store to the word just loaded cannot fault, so
                // only the load's fixup survives; cycle accounting is
                // positional and unchanged.
                let s8 = reg8(rs);
                let b8 = reg8(base);
                let o = off as u32;
                let fusable = s8 != b8
                    && matches!(
                        &ops[..],
                        [.., Op::Lw { rd, base: lb, off: lo, .. }, Op::AluI { rd: ard, rs: ars, .. }]
                            if *rd == s8 && *ard == s8 && *ars == s8 && *lb == b8 && *lo == o
                    );
                if fusable {
                    let Some(Op::AluI { op, rd, imm, .. }) = ops.pop() else {
                        unreachable!("pattern checked above");
                    };
                    let Some(Op::Lw {
                        base, off, info, ..
                    }) = ops.pop()
                    else {
                        unreachable!("pattern checked above");
                    };
                    // The store's fixup still gets its own MemInfo so
                    // the telemetry level can log the store access at
                    // the `sw` pc with the post-store clock.
                    mems.push(MemInfo {
                        pc,
                        prefix_cycles: cycles,
                        prefix_retired: count,
                    });
                    ops.push(Op::Rmw {
                        op,
                        rd,
                        base,
                        off,
                        imm,
                        info,
                        sinfo: (mems.len() - 1) as u32,
                    });
                } else {
                    mems.push(MemInfo {
                        pc,
                        prefix_cycles: cycles,
                        prefix_retired: count,
                    });
                    ops.push(Op::Sw {
                        rs: s8,
                        base: b8,
                        off: o,
                        info: (mems.len() - 1) as u32,
                    });
                }
                pc += 1;
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                cycles += u64::from(cost.branch);
                count += 1;
                // Loop heuristic: a backward branch is predicted taken,
                // a forward one predicted fall-through — unless falling
                // through runs straight into a syscall/halt and the
                // target does not, in which case the target is the fast
                // path. The other direction becomes an exact side exit
                // whose condition is stored pre-negated where needed.
                let taken = target <= pc
                    || (deopts_soon(program, pc + 1, 6) && !deopts_soon(program, target, 6));
                let (cont, exit_pc, exit_cond) = if taken {
                    (target, pc + 1, cond.negated())
                } else {
                    (pc + 1, target, cond)
                };
                // A branch whose exit condition already failed earlier
                // in the trace (same condition, same registers, no
                // intervening write) can never leave here: charge it
                // and keep walking, no op emitted.
                if exit_is_redundant(&ops, exit_cond, reg8(rs), reg8(rt)) {
                    pc = cont;
                    continue;
                }
                exits.push(ExitInfo {
                    pc: exit_pc,
                    next: leader_or_none(map, exit_pc),
                    prefix_cycles: cycles,
                    prefix_retired: count,
                });
                let info = (exits.len() - 1) as u32;
                // Peephole: `alui rd,...` feeding the branch's left
                // operand fuses into one compute-and-maybe-exit op —
                // the decrement-and-loop idiom.
                let fusable = matches!(ops.last(), Some(Op::AluI { rd, .. }) if *rd == reg8(rs));
                if fusable {
                    let Some(Op::AluI {
                        op,
                        rd,
                        rs: ars,
                        imm,
                    }) = ops.pop()
                    else {
                        unreachable!("pattern checked above");
                    };
                    ops.push(Op::AluIExit {
                        op,
                        rd,
                        rs: ars,
                        imm,
                        cond: exit_cond,
                        rt: reg8(rt),
                        info,
                    });
                } else {
                    ops.push(Op::ExitIf {
                        cond: exit_cond,
                        rs: reg8(rs),
                        rt: reg8(rt),
                        info,
                    });
                }
                pc = cont;
            }
            Inst::J { target } => {
                cycles += u64::from(cost.jump);
                count += 1;
                pc = target;
            }
            Inst::Jal { target } => {
                cycles += u64::from(cost.jump + cost.call_extra);
                count += 1;
                ops.push(Op::Link {
                    rd: reg8(Reg::RA),
                    value: pc + 1,
                });
                rets.push(pc + 1);
                pc = target;
            }
            Inst::Jr { rs } => {
                cycles += u64::from(cost.jump);
                count += 1;
                // Return of a call this trace inlined: predict the jump
                // lands at the pc after the matching `jal` and keep
                // walking there, guarded at run time. Without a pending
                // call the target is unknowable and the trace ends.
                if let Some(predict) = rets.pop() {
                    exits.push(ExitInfo {
                        pc: predict,
                        next: NO_BLOCK,
                        prefix_cycles: cycles,
                        prefix_retired: count,
                    });
                    ops.push(Op::RetGuard {
                        rs: reg8(rs),
                        predict,
                        info: (exits.len() - 1) as u32,
                    });
                    pc = predict;
                } else {
                    break Term::Indirect {
                        link_rd: 0,
                        link_value: 0,
                        rs: reg8(rs),
                    };
                }
            }
            Inst::Jalr { rd, rs } => {
                cycles += u64::from(cost.jump + cost.call_extra);
                count += 1;
                break Term::Indirect {
                    link_rd: if rd.is_zero() { 0 } else { reg8(rd) },
                    link_value: pc + 1,
                    rs: reg8(rs),
                };
            }
            Inst::Nop | Inst::Landmark => {
                cycles += u64::from(cost.nop);
                count += 1;
                pc += 1;
            }
            Inst::Tas { rd, base } => {
                if !has_interlocked {
                    // The interpreter raises the exact Illegal fault
                    // (charging nothing), so deopt before the inst.
                    deopt = Some(DeoptReason::Unsupported);
                    break Term::Interp { pc };
                }
                cycles += u64::from(cost.interlocked);
                count += 1;
                mems.push(MemInfo {
                    pc,
                    prefix_cycles: cycles,
                    prefix_retired: count,
                });
                ops.push(Op::Tas {
                    rd: if rd.is_zero() { 0 } else { reg8(rd) },
                    base: reg8(base),
                    info: (mems.len() - 1) as u32,
                });
                pc += 1;
            }
            Inst::Syscall => {
                deopt = Some(DeoptReason::Syscall);
                break Term::Interp { pc };
            }
            Inst::BeginAtomic => {
                deopt = Some(DeoptReason::Sequence);
                break Term::Interp { pc };
            }
            Inst::Halt => {
                deopt = Some(DeoptReason::Halt);
                break Term::Interp { pc };
            }
        }
    };

    if count == 0 {
        return None;
    }

    let total_cycles = cycles;
    let total_retired = count;
    let ops = ops.into_boxed_slice();
    let mems = mems.into_boxed_slice();
    let exits = exits.into_boxed_slice();
    let body = Box::new(move |m: &mut Machine, regs: &mut RegFile| -> BlockExit {
        // Telemetry guard, hoisted to one register compare per memory
        // op: with no access log attached the range is unhittable
        // (word accesses are 4-aligned, so address 1 never occurs, and
        // `log_access_at` double-checks the log anyway), otherwise it
        // is the machine's own quick-reject range. The collectors
        // cannot change mid-closure — only guest code runs here.
        let (watch_lo, watch_span) = if m.access_log_enabled() {
            (m.watch_lo, m.watch_span)
        } else {
            (1u32, 0u32)
        };
        let may_log = |addr: u32| addr.wrapping_sub(watch_lo) <= watch_span;
        for op in ops.iter() {
            match *op {
                Op::Li { rd, imm } => regs.set_raw(rd, imm),
                Op::Alu { op, rd, rs, rt } => {
                    let v = op.apply(regs.get_raw(rs), regs.get_raw(rt));
                    regs.set_raw(rd, v);
                }
                Op::AluI { op, rd, rs, imm } => {
                    let v = op.apply(regs.get_raw(rs), imm);
                    regs.set_raw(rd, v);
                }
                Op::Lw {
                    rd,
                    base,
                    off,
                    info,
                } => {
                    let addr = regs.get_raw(base).wrapping_add(off);
                    match m.mem.load(addr) {
                        Ok(v) => {
                            regs.set_raw(rd, v);
                            if may_log(addr) {
                                let i = &mems[info as usize];
                                m.log_access_at(
                                    m.clock + i.prefix_cycles,
                                    i.pc,
                                    addr,
                                    AccessKind::Load,
                                    false,
                                    v,
                                );
                            }
                        }
                        Err(e) => return mem_fault_exit(m, regs, &mems[info as usize], addr, e),
                    }
                }
                Op::LwZ { base, off, info } => {
                    let addr = regs.get_raw(base).wrapping_add(off);
                    match m.mem.load(addr) {
                        Ok(v) => {
                            if may_log(addr) {
                                let i = &mems[info as usize];
                                m.log_access_at(
                                    m.clock + i.prefix_cycles,
                                    i.pc,
                                    addr,
                                    AccessKind::Load,
                                    false,
                                    v,
                                );
                            }
                        }
                        Err(e) => return mem_fault_exit(m, regs, &mems[info as usize], addr, e),
                    }
                }
                Op::Sw {
                    rs,
                    base,
                    off,
                    info,
                } => {
                    let addr = regs.get_raw(base).wrapping_add(off);
                    let v = regs.get_raw(rs);
                    if let Err(e) = m.mem.store(addr, v) {
                        return mem_fault_exit(m, regs, &mems[info as usize], addr, e);
                    }
                    if may_log(addr) {
                        let i = &mems[info as usize];
                        m.log_access_at(
                            m.clock + i.prefix_cycles,
                            i.pc,
                            addr,
                            AccessKind::Store,
                            false,
                            v,
                        );
                    }
                }
                Op::Rmw {
                    op,
                    rd,
                    base,
                    off,
                    imm,
                    info,
                    sinfo,
                } => {
                    let addr = regs.get_raw(base).wrapping_add(off);
                    if may_log(addr) {
                        // Slow shape: the fused pair logs exactly what
                        // the interpreter's `lw; alui; sw` would — a
                        // load of the old value at the `lw` pc, then a
                        // store of the new value at the `sw` pc.
                        let old = match m.mem.load(addr) {
                            Ok(v) => v,
                            Err(e) => {
                                return mem_fault_exit(m, regs, &mems[info as usize], addr, e)
                            }
                        };
                        let i = &mems[info as usize];
                        m.log_access_at(
                            m.clock + i.prefix_cycles,
                            i.pc,
                            addr,
                            AccessKind::Load,
                            false,
                            old,
                        );
                        let new = op.apply(old, imm);
                        if let Err(e) = m.mem.store(addr, new) {
                            return mem_fault_exit(m, regs, &mems[info as usize], addr, e);
                        }
                        let s = &mems[sinfo as usize];
                        m.log_access_at(
                            m.clock + s.prefix_cycles,
                            s.pc,
                            addr,
                            AccessKind::Store,
                            false,
                            new,
                        );
                        regs.set_raw(rd, new);
                    } else {
                        match m.mem.update(addr, |v| op.apply(v, imm)) {
                            Ok(v2) => regs.set_raw(rd, v2),
                            Err(e) => {
                                return mem_fault_exit(m, regs, &mems[info as usize], addr, e)
                            }
                        }
                    }
                }
                Op::Tas { rd, base, info } => {
                    let addr = regs.get_raw(base);
                    let old = match m.mem.load(addr) {
                        Ok(v) => v,
                        Err(e) => return mem_fault_exit(m, regs, &mems[info as usize], addr, e),
                    };
                    if let Err(e) = m.mem.store(addr, 1) {
                        return mem_fault_exit(m, regs, &mems[info as usize], addr, e);
                    }
                    if rd != 0 {
                        regs.set_raw(rd, old);
                    }
                    if may_log(addr) {
                        let i = &mems[info as usize];
                        m.log_access_at(
                            m.clock + i.prefix_cycles,
                            i.pc,
                            addr,
                            AccessKind::Rmw,
                            true,
                            old,
                        );
                    }
                }
                Op::Link { rd, value } => regs.set_raw(rd, value),
                Op::RetGuard { rs, predict, info } => {
                    let target = regs.get_raw(rs);
                    if target != predict {
                        let e = &exits[info as usize];
                        m.clock += e.prefix_cycles;
                        m.retired += u64::from(e.prefix_retired);
                        regs.set_pc(target);
                        return BlockExit::Lookup;
                    }
                }
                Op::ExitIf { cond, rs, rt, info } => {
                    if cond.holds(regs.get_raw(rs), regs.get_raw(rt)) {
                        let e = &exits[info as usize];
                        m.clock += e.prefix_cycles;
                        m.retired += u64::from(e.prefix_retired);
                        regs.set_pc(e.pc);
                        return BlockExit::Next(e.next);
                    }
                }
                Op::AluIExit {
                    op,
                    rd,
                    rs,
                    imm,
                    cond,
                    rt,
                    info,
                } => {
                    let v = op.apply(regs.get_raw(rs), imm);
                    regs.set_raw(rd, v);
                    // `rt == rd` reads the freshly written value, exactly
                    // as the interpreter's branch would after the alui.
                    if cond.holds(v, regs.get_raw(rt)) {
                        let e = &exits[info as usize];
                        m.clock += e.prefix_cycles;
                        m.retired += u64::from(e.prefix_retired);
                        regs.set_pc(e.pc);
                        return BlockExit::Next(e.next);
                    }
                }
            }
        }
        m.clock += total_cycles;
        m.retired += u64::from(total_retired);
        match term {
            Term::Next { pc, next } => {
                regs.set_pc(pc);
                BlockExit::Next(next)
            }
            Term::Indirect {
                link_rd,
                link_value,
                rs,
            } => {
                let target = regs.get_raw(rs);
                if link_rd != 0 {
                    regs.set_raw(link_rd, link_value);
                }
                regs.set_pc(target);
                BlockExit::Lookup
            }
            Term::Interp { pc } => {
                regs.set_pc(pc);
                BlockExit::Interp
            }
        }
    });

    Some(CompiledBlock {
        cycles: total_cycles,
        deopt,
        covers: covers.into_boxed_slice(),
        body,
    })
}

impl Machine {
    /// Runs guest code through the translation tier: chained compiled
    /// traces where they exist, the exact interpreter everywhere else.
    /// Architecturally indistinguishable from [`Machine::run`] — same
    /// exits at the same clock with the same registers, memory, retired
    /// count, and restart-bit state — it just gets there faster. See
    /// the module docs for the exactness argument.
    ///
    /// When full instrumentation is enabled (tracing, profiling, an
    /// unfiltered access log, ...) the whole call is delegated to
    /// [`Machine::run`]'s instrumented loop, so collectors observe
    /// every instruction. A *watch-filtered* access log — the streaming
    /// telemetry level — runs translated: compiled traces carry enough
    /// positional metadata to reproduce the interpreter's log stream
    /// byte for byte (same pc, clock, kind, atomicity, and value on
    /// every watched access).
    pub fn run_translated(
        &mut self,
        program: &DecodedProgram,
        cache: &mut TranslationCache,
        regs: &mut RegFile,
        deadline: u64,
    ) -> Exit {
        let level = self.level();
        if level == LEVEL_FULL {
            cache.stats.deopt_instrumented += 1;
            return self.run(program, regs, deadline);
        }
        debug_assert!(
            cache.matches(program),
            "translation cache was built for a different program"
        );
        let cost = self.cost;
        loop {
            // Chain phase: run compiled traces back to back while the
            // restart bit is clear (translated code never sets it) and
            // each next trace's worst-case cycles fit the deadline.
            self.poll_atomic_expiry();
            if self.atomic_from.is_none() {
                let clock0 = self.clock;
                let retired0 = self.retired;
                let mut entries = 0u64;
                let mut hot: Option<u32> = None;
                let mut deopt: Option<DeoptReason> = None;
                let mut fault: Option<Fault> = None;
                let mut hit_deadline = false;
                {
                    let c: &TranslationCache = cache;
                    let mut bid = c.map.leader_at(regs.pc());
                    while let Some(id) = bid {
                        let Some(block) = c.body(id) else {
                            if c.runnable(id) {
                                hot = Some(id);
                            }
                            break;
                        };
                        if !(self.clock < deadline
                            && self.clock.saturating_add(block.cycles) <= deadline)
                        {
                            hit_deadline = true;
                            break;
                        }
                        entries += 1;
                        match (block.body)(self, regs) {
                            BlockExit::Next(next) => {
                                bid = (next != NO_BLOCK).then_some(next);
                            }
                            BlockExit::Lookup => bid = c.map.leader_at(regs.pc()),
                            BlockExit::Interp => {
                                deopt = block.deopt;
                                break;
                            }
                            BlockExit::Fault(f) => {
                                fault = Some(f);
                                break;
                            }
                        }
                    }
                }
                cache.stats.block_entries += entries;
                cache.stats.translated_instructions += self.retired - retired0;
                cache.stats.translated_cycles += self.clock - clock0;
                if hit_deadline {
                    cache.stats.deopt_deadline += 1;
                }
                match deopt {
                    Some(DeoptReason::Sequence) => cache.stats.deopt_sequence += 1,
                    Some(DeoptReason::Syscall) => cache.stats.deopt_syscall += 1,
                    Some(DeoptReason::Halt) => cache.stats.deopt_halt += 1,
                    Some(DeoptReason::Unsupported) => cache.stats.deopt_unsupported += 1,
                    None => {}
                }
                if let Some(f) = fault {
                    cache.stats.deopt_fault += 1;
                    return Exit::Fault(f);
                }
                if let Some(id) = hot {
                    cache.stats.deopt_cold += 1;
                    cache.heat(id, program);
                    if cache.bodies[id as usize].is_some() {
                        // Just compiled; re-enter the chain at this pc.
                        continue;
                    }
                }
            }
            // Interpreted phase: the exact per-instruction loop (the
            // reference semantics the amortized fast loop reproduces),
            // until execution reaches a translatable entry point with
            // the restart bit clear, or the quantum/run ends.
            loop {
                self.poll_atomic_expiry();
                if self.atomic_from.is_none() && self.clock >= deadline {
                    return Exit::Budget;
                }
                let before = self.clock;
                let stepped = if level == LEVEL_TELEMETRY {
                    self.execute_counted::<LEVEL_TELEMETRY>(program, regs, &cost)
                } else {
                    self.execute_counted::<LEVEL_FAST>(program, regs, &cost)
                };
                cache.stats.interpreted_instructions += 1;
                cache.stats.interpreted_cycles += self.clock - before;
                if let Some(exit) = stepped {
                    return exit;
                }
                if self.atomic_from.is_none() {
                    if let Some(id) = cache.map.leader_at(regs.pc()) {
                        if cache.runnable(id) {
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::Asm;

    fn assemble(build: impl FnOnce(&mut Asm)) -> DecodedProgram {
        let mut asm = Asm::new();
        build(&mut asm);
        DecodedProgram::new(&asm.finish().unwrap())
    }

    /// A counter loop: `iters` iterations of load/add/store plus loop
    /// control — the shape of the paper's fast-path workloads.
    fn counter_loop(iters: i32) -> DecodedProgram {
        assemble(|a| {
            a.li(Reg::S0, iters);
            a.li(Reg::S1, 64); // counter address
            let top = a.bind_new();
            a.lw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
        })
    }

    /// Runs `program` to completion (or `deadline`) under both engines
    /// and asserts identical observable state at every slice boundary.
    fn assert_engines_agree(program: &DecodedProgram, profile: fn() -> CpuProfile, slices: &[u64]) {
        let mut mi = Machine::new(profile(), 4096);
        let mut mt = Machine::new(profile(), 4096);
        let mut ri = RegFile::new(program.entry());
        let mut rt = RegFile::new(program.entry());
        let mut cache = TranslationCache::new(program, &profile(), &[]).with_threshold(1);
        let mut deadline = 0u64;
        for (i, slice) in slices.iter().enumerate() {
            deadline += slice;
            let ei = mi.run(program, &mut ri, deadline);
            let et = mt.run_translated(program, &mut cache, &mut rt, deadline);
            assert_eq!(ei, et, "exit diverged at slice {i}");
            assert_eq!(mi.clock(), mt.clock(), "clock diverged at slice {i}");
            assert_eq!(
                mi.instructions_retired(),
                mt.instructions_retired(),
                "retired diverged at slice {i}"
            );
            assert_eq!(ri, rt, "registers diverged at slice {i}");
            assert_eq!(
                mi.atomic_restart_pc(),
                mt.atomic_restart_pc(),
                "restart bit diverged at slice {i}"
            );
            for addr in (0..256).step_by(4) {
                assert_eq!(
                    mi.mem().load(addr),
                    mt.mem().load(addr),
                    "memory diverged at {addr} (slice {i})"
                );
            }
            if !matches!(ei, Exit::Budget) {
                return;
            }
        }
    }

    #[test]
    fn hot_loop_matches_interpreter_exactly() {
        assert_engines_agree(&counter_loop(500), CpuProfile::r3000, &[u64::MAX]);
    }

    #[test]
    fn quantum_expiry_mid_superblock_is_exact() {
        // Odd slice sizes land deadlines at every possible offset
        // within the loop's trace; each boundary must match the
        // interpreter's to the cycle.
        let slices: Vec<u64> = (1..60).map(|i| 7 + (i % 13)).collect();
        assert_engines_agree(&counter_loop(100), CpuProfile::r3000, &slices);
        assert_engines_agree(&counter_loop(100), CpuProfile::i486, &slices);
    }

    #[test]
    fn fault_mid_superblock_is_exact() {
        // The third iteration's store faults (unaligned address
        // computed into S1): clock/retired/pc at the fault must match.
        let p = assemble(|a| {
            a.li(Reg::S0, 5);
            a.li(Reg::S1, 64);
            let top = a.bind_new();
            a.lw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::S1, Reg::S1, 2); // drifts to unaligned
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
        });
        assert_engines_agree(&p, CpuProfile::r3000, &[u64::MAX]);
    }

    #[test]
    fn out_of_range_load_faults_exactly() {
        let p = assemble(|a| {
            a.li(Reg::S1, 1 << 20); // far past memory
            a.nop();
            a.lw(Reg::T0, Reg::S1, 0);
            a.halt();
        });
        assert_engines_agree(&p, CpuProfile::r3000, &[u64::MAX]);
    }

    #[test]
    fn hardware_sequence_deopts_and_matches() {
        // i860 restart bit: begin_atomic deopts, the whole window runs
        // interpreted, the store clears the bit mid-window. Slicing
        // exercises rollback-relevant boundaries (the kernel reads
        // atomic_restart_pc at exactly these points).
        let p = assemble(|a| {
            a.li(Reg::S0, 20);
            a.li(Reg::S1, 64);
            let top = a.bind_new();
            a.begin_atomic();
            a.lw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
        });
        let slices: Vec<u64> = (1..80).map(|i| 3 + (i % 7)).collect();
        assert_engines_agree(&p, CpuProfile::i860, &slices);
        assert_engines_agree(&p, CpuProfile::i860, &[u64::MAX]);
    }

    #[test]
    fn tas_translates_on_hardware_profiles_and_deopts_elsewhere() {
        let p = assemble(|a| {
            a.li(Reg::S0, 10);
            a.li(Reg::S1, 64);
            let top = a.bind_new();
            a.tas(Reg::T0, Reg::S1);
            a.sw(Reg::ZERO, Reg::S1, 0);
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
        });
        // i486 has hardware TAS: runs translated.
        assert_engines_agree(&p, CpuProfile::i486, &[u64::MAX]);
        // r3000 does not: both engines raise the same Illegal fault.
        assert_engines_agree(&p, CpuProfile::r3000, &[u64::MAX]);
    }

    #[test]
    fn calls_and_indirect_returns_match() {
        let p = assemble(|a| {
            let func = a.label();
            a.li(Reg::S0, 30);
            a.li(Reg::S1, 64);
            let top = a.bind_new();
            a.jal(func);
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
            a.bind(func);
            a.lw(Reg::T0, Reg::S1, 0);
            a.addi(Reg::T0, Reg::T0, 3);
            a.sw(Reg::T0, Reg::S1, 0);
            a.jr(Reg::RA);
        });
        assert_engines_agree(&p, CpuProfile::r3000, &[u64::MAX]);
        let slices: Vec<u64> = (1..40).map(|i| 5 + (i % 11)).collect();
        assert_engines_agree(&p, CpuProfile::r3000, &slices);
    }

    #[test]
    fn zero_destination_writes_are_discarded() {
        let p = assemble(|a| {
            a.li(Reg::S1, 64);
            a.li(Reg::ZERO, 7); // all discarded
            a.alu(AluOp::Add, Reg::ZERO, Reg::S1, Reg::S1);
            a.lw(Reg::ZERO, Reg::S1, 0);
            a.addi(Reg::T0, Reg::ZERO, 5); // reads hardwired zero
            a.halt();
        });
        assert_engines_agree(&p, CpuProfile::r3000, &[u64::MAX]);
    }

    #[test]
    fn compilation_waits_for_the_hot_threshold() {
        let p = counter_loop(50);
        let profile = CpuProfile::r3000();
        let mut m = Machine::new(profile.clone(), 4096);
        let mut regs = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile, &[]).with_threshold(1000);
        assert_eq!(
            m.run_translated(&p, &mut cache, &mut regs, u64::MAX),
            Exit::Halt
        );
        assert_eq!(cache.compiled(), 0, "threshold never reached");
        let s = cache.stats();
        assert_eq!(s.translated_instructions, 0);
        assert!(s.interpreted_instructions > 0);
    }

    #[test]
    fn hot_code_actually_runs_translated() {
        let p = counter_loop(200);
        let profile = CpuProfile::r3000();
        let mut m = Machine::new(profile.clone(), 4096);
        let mut regs = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile, &[]).with_threshold(2);
        assert_eq!(
            m.run_translated(&p, &mut cache, &mut regs, u64::MAX),
            Exit::Halt
        );
        let s = cache.stats();
        assert!(s.blocks_compiled >= 1);
        assert!(
            s.translated_instructions > s.interpreted_instructions,
            "hot loop should retire mostly translated ({s:?})"
        );
        assert_eq!(
            s.translated_instructions + s.interpreted_instructions,
            m.instructions_retired()
        );
        assert_eq!(s.translated_cycles + s.interpreted_cycles, m.clock());
        // Warmup entries at cold heads are counted as deopts; `halt`
        // heads its own block, which is uncompilable, so it simply runs
        // interpreted without a trace-side deopt.
        assert!(s.deopt_cold >= 1, "{s:?}");
    }

    #[test]
    fn instrumented_mode_delegates_wholesale() {
        let p = counter_loop(50);
        let profile = CpuProfile::r3000();
        let mut m = Machine::new(profile.clone(), 4096);
        m.enable_mix();
        let mut regs = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile, &[]).with_threshold(1);
        assert_eq!(
            m.run_translated(&p, &mut cache, &mut regs, u64::MAX),
            Exit::Halt
        );
        let s = cache.stats();
        assert_eq!(s.deopt_instrumented, 1);
        assert_eq!(s.block_entries, 0, "no trace runs in instrumented mode");
        let mix = m.instruction_mix();
        assert!(mix.iter().sum::<u64>() > 0, "mix collector saw the run");
    }

    /// A lock-shaped workload touching every memory micro-op the
    /// translator emits: `tas` acquire, a fusable `lw;addi;sw` counter
    /// increment ([`Op::Rmw`]), unwatched scratch traffic, a watched
    /// release store of zero, and a watched load that reads zero (which
    /// the telemetry filter must drop).
    fn lock_workload(iters: i32) -> DecodedProgram {
        assemble(|a| {
            a.li(Reg::S0, iters);
            a.li(Reg::A0, 16); // lock word (watched)
            a.li(Reg::S1, 64); // shared counter (watched)
            a.li(Reg::S2, 128); // private scratch (unwatched)
            let top = a.bind_new();
            let spin = a.bind_new();
            a.tas(Reg::V0, Reg::A0);
            a.bnez(Reg::V0, spin);
            a.lw(Reg::T0, Reg::S1, 0); // fuses with the next two
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, Reg::S1, 0);
            a.lw(Reg::T1, Reg::S2, 0);
            a.addi(Reg::T1, Reg::T1, 3);
            a.sw(Reg::T1, Reg::S2, 0);
            a.sw(Reg::ZERO, Reg::A0, 0); // release: watched store of 0
            a.lw(Reg::T2, Reg::A0, 0); // watched load of 0: filtered out
            a.addi(Reg::S0, Reg::S0, -1);
            a.bnez(Reg::S0, top);
            a.halt();
        })
    }

    #[test]
    fn telemetry_level_runs_translated_with_identical_access_stream() {
        let p = lock_workload(200);
        let profile = CpuProfile::i860;
        let mut mi = Machine::new(profile(), 4096);
        let mut mt = Machine::new(profile(), 4096);
        for m in [&mut mi, &mut mt] {
            m.enable_access_log();
            m.set_access_watch(&[16, 64]);
        }
        let mut ri = RegFile::new(p.entry());
        let mut rt = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile(), &[]).with_threshold(1);
        // Odd small slices land deadlines at every offset within the
        // loop (trace worst-case cycles exceed the budget, so these run
        // through the telemetry interpreter), then an unbounded slice
        // lets compiled traces chain for the bulk of the run; the
        // drained access stream must match at every boundary.
        let slices = [91u64, 103, 97, 115, 101, 93, 107, 99, u64::MAX];
        let mut deadline = 0u64;
        for (i, slice) in slices.into_iter().enumerate() {
            deadline = deadline.saturating_add(slice);
            let ei = mi.run(&p, &mut ri, deadline);
            let et = mt.run_translated(&p, &mut cache, &mut rt, deadline);
            assert_eq!(ei, et, "exit diverged at slice {i}");
            assert_eq!(mi.clock(), mt.clock(), "clock diverged at slice {i}");
            assert_eq!(ri, rt, "registers diverged at slice {i}");
            assert_eq!(
                mi.take_accesses(),
                mt.take_accesses(),
                "access stream diverged at slice {i}"
            );
            if !matches!(ei, Exit::Budget) {
                break;
            }
        }
        let s = cache.stats();
        assert_eq!(
            s.deopt_instrumented, 0,
            "telemetry level must not delegate to the instrumented loop"
        );
        assert!(
            s.block_entries > 0,
            "telemetry level must actually run compiled traces: {s:?}"
        );
        assert!(
            s.translated_instructions > s.interpreted_instructions,
            "the hot loop should retire mostly translated: {s:?}"
        );
    }

    #[test]
    fn telemetry_unwatched_run_logs_nothing_and_stays_translated() {
        // A watch that misses every address the workload touches: the
        // quick-reject keeps the hot path log-free and the stream empty.
        let p = lock_workload(50);
        let profile = CpuProfile::i860;
        let mut m = Machine::new(profile(), 4096);
        m.enable_access_log();
        m.set_access_watch(&[2048]);
        let mut regs = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile(), &[]).with_threshold(1);
        assert_eq!(
            m.run_translated(&p, &mut cache, &mut regs, u64::MAX),
            Exit::Halt
        );
        assert!(m.take_accesses().is_empty());
        assert_eq!(cache.stats().deopt_instrumented, 0);
        assert!(cache.stats().block_entries > 0);
    }

    #[test]
    fn invalidation_drops_covering_traces_and_recompiles() {
        let p = counter_loop(100);
        let profile = CpuProfile::r3000();
        let mut m = Machine::new(profile.clone(), 4096);
        let mut regs = RegFile::new(p.entry());
        let mut cache = TranslationCache::new(&p, &profile, &[]).with_threshold(1);
        assert_eq!(
            m.run_translated(&p, &mut cache, &mut regs, u64::MAX),
            Exit::Halt
        );
        assert!(cache.compiled() >= 1);
        // pc 2 is the loop body; every trace covering it must go.
        let dropped = cache.invalidate(2);
        assert!(dropped >= 1);
        assert_eq!(cache.stats().invalidations, dropped as u64);
        // Rerun from scratch: recompiles and still matches the
        // interpreter.
        let mut m2 = Machine::new(profile.clone(), 4096);
        let mut r2 = RegFile::new(p.entry());
        let before = cache.stats().blocks_compiled;
        assert_eq!(
            m2.run_translated(&p, &mut cache, &mut r2, u64::MAX),
            Exit::Halt
        );
        assert!(cache.stats().blocks_compiled > before);
        assert_eq!(m2.clock(), {
            let mut mi = Machine::new(profile.clone(), 4096);
            let mut ri = RegFile::new(p.entry());
            mi.run(&p, &mut ri, u64::MAX);
            mi.clock()
        });
        assert!(cache.invalidate_all() >= 1);
        assert_eq!(cache.compiled(), 0);
    }

    #[test]
    fn cache_fingerprint_rejects_other_programs() {
        let a = counter_loop(10);
        let b = counter_loop(11);
        let profile = CpuProfile::r3000();
        let cache = TranslationCache::new(&a, &profile, &[]);
        assert!(cache.matches(&a));
        assert!(!cache.matches(&b));
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!(EngineKind::parse("interp"), Some(EngineKind::Interpreter));
        assert_eq!(
            EngineKind::parse("interpreter"),
            Some(EngineKind::Interpreter)
        );
        assert_eq!(
            EngineKind::parse("translated"),
            Some(EngineKind::Translated)
        );
        assert_eq!(EngineKind::parse("jit"), None);
        assert_eq!(EngineKind::Translated.to_string(), "translated");
        assert_eq!(EngineKind::default(), EngineKind::Interpreter);
    }
}
