use std::fmt;

use ras_isa::{CodeAddr, Reg};

/// A thread's architectural state: 32 general registers and the program
/// counter.
///
/// Register `$zero` reads as zero and ignores writes, as on the MIPS R3000.
///
/// # Example
///
/// ```
/// use ras_isa::Reg;
/// use ras_machine::RegFile;
///
/// let mut regs = RegFile::new(0);
/// regs.set(Reg::A0, 7);
/// regs.set(Reg::ZERO, 99); // silently ignored
/// assert_eq!(regs.get(Reg::A0), 7);
/// assert_eq!(regs.get(Reg::ZERO), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RegFile {
    gpr: [u32; 32],
    pc: CodeAddr,
}

impl RegFile {
    /// Creates a register file with all registers zero and the given PC.
    pub fn new(pc: CodeAddr) -> RegFile {
        RegFile { gpr: [0; 32], pc }
    }

    /// Reads a register.
    pub fn get(&self, r: Reg) -> u32 {
        self.gpr[r.index()]
    }

    /// The whole general-purpose register bank, `r0` first. For bulk
    /// consumers (state hashing) that would otherwise pay 32 indexed
    /// [`RegFile::get`] calls.
    pub fn gprs(&self) -> &[u32; 32] {
        &self.gpr
    }

    /// Writes a register; writes to `$zero` are discarded.
    pub fn set(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.gpr[r.index()] = value;
        }
    }

    /// Reads a register by raw index. The translation tier compiles
    /// register numbers down to `u8` operands; reading `$zero` (index 0)
    /// is fine because nothing ever writes it.
    #[inline(always)]
    pub(crate) fn get_raw(&self, idx: u8) -> u32 {
        self.gpr[usize::from(idx)]
    }

    /// Writes a register by raw index, skipping the `$zero` guard. The
    /// translator never emits a write to index 0 (such writes compile to
    /// ghosts), which keeps the hardwired-zero contract without a branch.
    #[inline(always)]
    pub(crate) fn set_raw(&mut self, idx: u8, value: u32) {
        debug_assert_ne!(idx, 0, "translated code must not write $zero");
        self.gpr[usize::from(idx)] = value;
    }

    /// The current program counter (an instruction index).
    pub fn pc(&self) -> CodeAddr {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: CodeAddr) {
        self.pc = pc;
    }

    /// Advances the program counter by one instruction.
    pub fn advance(&mut self) {
        self.pc += 1;
    }
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new(0)
    }
}

impl fmt::Debug for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegFile {{ pc: {}", self.pc)?;
        for r in Reg::all() {
            let v = self.get(r);
            if v != 0 {
                write!(f, ", {r}: {v:#x}")?;
            }
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut regs = RegFile::new(0);
        regs.set(Reg::ZERO, 0xdead);
        assert_eq!(regs.get(Reg::ZERO), 0);
    }

    #[test]
    fn pc_roundtrip_and_advance() {
        let mut regs = RegFile::new(10);
        assert_eq!(regs.pc(), 10);
        regs.advance();
        assert_eq!(regs.pc(), 11);
        regs.set_pc(3);
        assert_eq!(regs.pc(), 3);
    }

    #[test]
    fn registers_are_independent() {
        let mut regs = RegFile::default();
        for r in Reg::all().skip(1) {
            regs.set(r, r.index() as u32 * 3);
        }
        for r in Reg::all().skip(1) {
            assert_eq!(regs.get(r), r.index() as u32 * 3);
        }
    }

    #[test]
    fn debug_shows_nonzero_registers_only() {
        let mut regs = RegFile::new(5);
        regs.set(Reg::V0, 1);
        let dbg = format!("{regs:?}");
        assert!(dbg.contains("$v0"));
        assert!(!dbg.contains("$t9"));
        assert!(dbg.contains("pc: 5"));
    }
}
