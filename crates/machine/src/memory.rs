use std::fmt;

use ras_isa::DataAddr;

/// Error produced by a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not 4-byte aligned.
    Unaligned {
        /// The offending byte address.
        addr: DataAddr,
    },
    /// The address lies outside the configured memory size.
    OutOfRange {
        /// The offending byte address.
        addr: DataAddr,
    },
    /// The page containing the address is not resident; the kernel must
    /// service a page fault before the access can complete.
    NotResident {
        /// The offending byte address.
        addr: DataAddr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
            MemError::OutOfRange { addr } => write!(f, "access at {addr:#x} is out of range"),
            MemError::NotResident { addr } => write!(f, "page fault at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Configuration for the optional demand-paging layer.
///
/// When installed, pages start non-resident; the first access to each page
/// faults to the kernel, which charges an I/O delay and marks it resident.
/// When more than `max_resident` pages are resident, the kernel evicts in
/// FIFO order, so long-running programs keep faulting — this is the source
/// of the "page fault" suspensions discussed in §4.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfig {
    /// Page size in bytes (power of two, ≥ 8).
    pub page_bytes: u32,
    /// Maximum number of simultaneously resident pages (0 = unlimited).
    pub max_resident: usize,
}

impl PagingConfig {
    /// A small configuration useful in tests: 256-byte pages, 4 resident.
    pub fn tiny() -> PagingConfig {
        PagingConfig {
            page_bytes: 256,
            max_resident: 4,
        }
    }
}

/// Byte-addressed, word-aligned data memory with an optional residency map.
///
/// # Example
///
/// ```
/// use ras_machine::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.store(16, 7)?;
/// assert_eq!(mem.load(16)?, 7);
/// assert!(mem.load(18).is_err()); // unaligned
/// # Ok::<(), ras_machine::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u32>,
    paging: Option<PagingState>,
}

#[derive(Debug, Clone)]
struct PagingState {
    config: PagingConfig,
    resident: Vec<bool>,
}

impl Memory {
    /// Creates a zeroed memory of `bytes` bytes (rounded up to a word).
    pub fn new(bytes: u32) -> Memory {
        Memory {
            words: vec![0; bytes.div_ceil(4) as usize],
            paging: None,
        }
    }

    /// Total size in bytes.
    pub fn len_bytes(&self) -> u32 {
        self.words.len() as u32 * 4
    }

    /// Installs demand paging; all pages start non-resident.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or is smaller than 8
    /// bytes.
    pub fn enable_paging(&mut self, config: PagingConfig) {
        assert!(
            config.page_bytes.is_power_of_two() && config.page_bytes >= 8,
            "bad page size {}",
            config.page_bytes
        );
        let pages = self.len_bytes().div_ceil(config.page_bytes) as usize;
        self.paging = Some(PagingState {
            config,
            resident: vec![false; pages],
        });
    }

    /// Whether paging is installed.
    pub fn paging_enabled(&self) -> bool {
        self.paging.is_some()
    }

    /// The page index of a byte address, if paging is enabled.
    pub fn page_of(&self, addr: DataAddr) -> Option<usize> {
        self.paging
            .as_ref()
            .map(|p| (addr / p.config.page_bytes) as usize)
    }

    /// Marks the page containing `addr` resident. Returns the page index.
    ///
    /// # Panics
    ///
    /// Panics if paging is not enabled or `addr` is out of range.
    pub fn make_resident(&mut self, addr: DataAddr) -> usize {
        let page = self.page_of(addr).expect("paging not enabled");
        self.paging.as_mut().unwrap().resident[page] = true;
        page
    }

    /// Evicts a page (marks it non-resident). The simulator does not model
    /// page contents being swapped; residency only controls faulting.
    ///
    /// # Panics
    ///
    /// Panics if paging is not enabled or the index is out of range.
    pub fn evict_page(&mut self, page: usize) {
        self.paging.as_mut().unwrap().resident[page] = false;
    }

    /// Number of currently resident pages (0 if paging is disabled).
    pub fn resident_pages(&self) -> usize {
        self.paging
            .as_ref()
            .map_or(0, |p| p.resident.iter().filter(|r| **r).count())
    }

    /// The paging configuration, if installed.
    pub fn paging_config(&self) -> Option<PagingConfig> {
        self.paging.as_ref().map(|p| p.config)
    }

    fn check(&self, addr: DataAddr) -> Result<usize, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words.len() {
            return Err(MemError::OutOfRange { addr });
        }
        if let Some(p) = &self.paging {
            if !p.resident[(addr / p.config.page_bytes) as usize] {
                return Err(MemError::NotResident { addr });
            }
        }
        Ok(idx)
    }

    /// Loads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses, or with
    /// [`MemError::NotResident`] when the page must first be faulted in.
    pub fn load(&self, addr: DataAddr) -> Result<u32, MemError> {
        self.check(addr).map(|idx| self.words[idx])
    }

    /// Stores `value` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load`].
    pub fn store(&mut self, addr: DataAddr, value: u32) -> Result<(), MemError> {
        let idx = self.check(addr)?;
        self.words[idx] = value;
        Ok(())
    }

    /// Loads a word ignoring residency (kernel-privileged access, used when
    /// the kernel inspects or initializes user memory).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn load_kernel(&self, addr: DataAddr) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        self.words
            .get(idx)
            .copied()
            .ok_or(MemError::OutOfRange { addr })
    }

    /// Stores a word ignoring residency (kernel-privileged access).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn store_kernel(&mut self, addr: DataAddr, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        let slot = self
            .words
            .get_mut(idx)
            .ok_or(MemError::OutOfRange { addr })?;
        *slot = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut mem = Memory::new(64);
        mem.store(0, 1).unwrap();
        mem.store(60, u32::MAX).unwrap();
        assert_eq!(mem.load(0).unwrap(), 1);
        assert_eq!(mem.load(60).unwrap(), u32::MAX);
        assert_eq!(mem.load(4).unwrap(), 0);
    }

    #[test]
    fn size_rounds_up_to_word() {
        assert_eq!(Memory::new(5).len_bytes(), 8);
        assert_eq!(Memory::new(0).len_bytes(), 0);
    }

    #[test]
    fn alignment_and_bounds_are_enforced() {
        let mut mem = Memory::new(16);
        assert_eq!(mem.load(2), Err(MemError::Unaligned { addr: 2 }));
        assert_eq!(mem.store(17, 0), Err(MemError::Unaligned { addr: 17 }));
        assert_eq!(mem.load(16), Err(MemError::OutOfRange { addr: 16 }));
        assert_eq!(
            mem.store(1 << 30, 0),
            Err(MemError::OutOfRange { addr: 1 << 30 })
        );
    }

    #[test]
    fn paging_faults_until_resident() {
        let mut mem = Memory::new(1024);
        mem.enable_paging(PagingConfig {
            page_bytes: 256,
            max_resident: 0,
        });
        assert_eq!(mem.load(0), Err(MemError::NotResident { addr: 0 }));
        assert_eq!(mem.page_of(300), Some(1));
        mem.make_resident(0);
        assert_eq!(mem.load(0).unwrap(), 0);
        assert_eq!(mem.load(256), Err(MemError::NotResident { addr: 256 }));
        assert_eq!(mem.resident_pages(), 1);
        mem.evict_page(0);
        assert_eq!(mem.load(0), Err(MemError::NotResident { addr: 0 }));
    }

    #[test]
    fn kernel_access_bypasses_residency() {
        let mut mem = Memory::new(512);
        mem.enable_paging(PagingConfig::tiny());
        mem.store_kernel(8, 42).unwrap();
        assert_eq!(mem.load_kernel(8).unwrap(), 42);
        assert!(mem.load(8).is_err(), "user access still faults");
        assert!(mem.load_kernel(3).is_err());
        assert!(mem.load_kernel(4096).is_err());
    }
}
