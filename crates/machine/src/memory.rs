use std::fmt;

use ras_isa::DataAddr;

/// Error produced by a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not 4-byte aligned.
    Unaligned {
        /// The offending byte address.
        addr: DataAddr,
    },
    /// The address lies outside the configured memory size.
    OutOfRange {
        /// The offending byte address.
        addr: DataAddr,
    },
    /// The page containing the address is not resident; the kernel must
    /// service a page fault before the access can complete.
    NotResident {
        /// The offending byte address.
        addr: DataAddr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
            MemError::OutOfRange { addr } => write!(f, "access at {addr:#x} is out of range"),
            MemError::NotResident { addr } => write!(f, "page fault at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Configuration for the optional demand-paging layer.
///
/// When installed, pages start non-resident; the first access to each page
/// faults to the kernel, which charges an I/O delay and marks it resident.
/// When more than `max_resident` pages are resident, the kernel evicts in
/// FIFO order, so long-running programs keep faulting — this is the source
/// of the "page fault" suspensions discussed in §4.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfig {
    /// Page size in bytes (power of two, ≥ 8).
    pub page_bytes: u32,
    /// Maximum number of simultaneously resident pages (0 = unlimited).
    pub max_resident: usize,
}

impl PagingConfig {
    /// A small configuration useful in tests: 256-byte pages, 4 resident.
    pub fn tiny() -> PagingConfig {
        PagingConfig {
            page_bytes: 256,
            max_resident: 4,
        }
    }
}

/// Byte-addressed, word-aligned data memory with an optional residency map.
///
/// # Example
///
/// ```
/// use ras_machine::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.store(16, 7)?;
/// assert_eq!(mem.load(16)?, 7);
/// assert!(mem.load(18).is_err()); // unaligned
/// # Ok::<(), ras_machine::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u32>,
    paging: Option<PagingState>,
    dirty: Option<DirtyState>,
}

#[derive(Debug, Clone)]
struct PagingState {
    config: PagingConfig,
    resident: Vec<bool>,
}

/// Write tracking for cheap checkpoint/restore: an undo log of
/// `(addr, old word)` entries plus a running XOR-fold fingerprint of the
/// words below `fp_limit`, maintained incrementally on every tracked
/// store. The fold is order-independent (XOR of a per-word mix), so a
/// store updates it in O(1): `fp ^= mix(addr, old) ^ mix(addr, new)`.
#[derive(Debug, Clone)]
struct DirtyState {
    undo: Vec<(DataAddr, u32)>,
    fingerprint: u64,
    fp_limit: DataAddr,
}

/// Mixes one `(addr, value)` word pair into a 64-bit token (a
/// splitmix64-style finalizer), the per-word term of the XOR-fold
/// fingerprint. Public so callers comparing an incremental fingerprint
/// against a fresh scan use the same algebra by construction.
pub fn word_mix(addr: DataAddr, value: u32) -> u64 {
    let mut z = ((u64::from(addr) << 32) | u64::from(value)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Memory {
    /// Creates a zeroed memory of `bytes` bytes (rounded up to a word).
    pub fn new(bytes: u32) -> Memory {
        Memory {
            words: vec![0; bytes.div_ceil(4) as usize],
            paging: None,
            dirty: None,
        }
    }

    /// Total size in bytes.
    pub fn len_bytes(&self) -> u32 {
        self.words.len() as u32 * 4
    }

    /// Installs demand paging; all pages start non-resident.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or is smaller than 8
    /// bytes.
    pub fn enable_paging(&mut self, config: PagingConfig) {
        assert!(
            config.page_bytes.is_power_of_two() && config.page_bytes >= 8,
            "bad page size {}",
            config.page_bytes
        );
        let pages = self.len_bytes().div_ceil(config.page_bytes) as usize;
        self.paging = Some(PagingState {
            config,
            resident: vec![false; pages],
        });
    }

    /// Whether paging is installed.
    pub fn paging_enabled(&self) -> bool {
        self.paging.is_some()
    }

    /// The page index of a byte address, if paging is enabled.
    pub fn page_of(&self, addr: DataAddr) -> Option<usize> {
        self.paging
            .as_ref()
            .map(|p| (addr / p.config.page_bytes) as usize)
    }

    /// Marks the page containing `addr` resident. Returns the page index.
    ///
    /// # Panics
    ///
    /// Panics if paging is not enabled or `addr` is out of range.
    pub fn make_resident(&mut self, addr: DataAddr) -> usize {
        let page = self.page_of(addr).expect("paging not enabled");
        self.paging.as_mut().unwrap().resident[page] = true;
        page
    }

    /// Evicts a page (marks it non-resident). The simulator does not model
    /// page contents being swapped; residency only controls faulting.
    ///
    /// # Panics
    ///
    /// Panics if paging is not enabled or the index is out of range.
    pub fn evict_page(&mut self, page: usize) {
        self.paging.as_mut().unwrap().resident[page] = false;
    }

    /// Number of currently resident pages (0 if paging is disabled).
    pub fn resident_pages(&self) -> usize {
        self.paging
            .as_ref()
            .map_or(0, |p| p.resident.iter().filter(|r| **r).count())
    }

    /// The paging configuration, if installed.
    pub fn paging_config(&self) -> Option<PagingConfig> {
        self.paging.as_ref().map(|p| p.config)
    }

    fn check(&self, addr: DataAddr) -> Result<usize, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words.len() {
            return Err(MemError::OutOfRange { addr });
        }
        if let Some(p) = &self.paging {
            if !p.resident[(addr / p.config.page_bytes) as usize] {
                return Err(MemError::NotResident { addr });
            }
        }
        Ok(idx)
    }

    /// Loads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses, or with
    /// [`MemError::NotResident`] when the page must first be faulted in.
    pub fn load(&self, addr: DataAddr) -> Result<u32, MemError> {
        self.check(addr).map(|idx| self.words[idx])
    }

    /// Stores `value` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load`].
    pub fn store(&mut self, addr: DataAddr, value: u32) -> Result<(), MemError> {
        let idx = self.check(addr)?;
        self.words[idx] = value;
        Ok(())
    }

    /// Replaces the word at `addr` with `f` of its current value,
    /// returning the new value — a load-modify-store round trip with a
    /// single alignment/range/residency check, for callers (the
    /// translation tier's fused read-modify-write op) that would
    /// otherwise pay [`Memory::load`] and [`Memory::store`] back to
    /// back on the same address.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load`].
    pub fn update(&mut self, addr: DataAddr, f: impl FnOnce(u32) -> u32) -> Result<u32, MemError> {
        let idx = self.check(addr)?;
        let v = f(self.words[idx]);
        self.words[idx] = v;
        Ok(v)
    }

    /// Loads a word ignoring residency (kernel-privileged access, used when
    /// the kernel inspects or initializes user memory).
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn load_kernel(&self, addr: DataAddr) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        self.words
            .get(idx)
            .copied()
            .ok_or(MemError::OutOfRange { addr })
    }

    /// Stores a word ignoring residency (kernel-privileged access).
    ///
    /// When dirty tracking is enabled the store is recorded in the undo
    /// log like any other — the kernel's own writes (emulated
    /// Test-And-Set, user-redirect stack pushes) must rewind too. This is
    /// off the machine's fast loop, so the tracking branch costs nothing
    /// where it matters.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-range addresses.
    pub fn store_kernel(&mut self, addr: DataAddr, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / 4) as usize;
        if self.dirty.is_some() {
            self.track(addr, idx, value);
        }
        let slot = self
            .words
            .get_mut(idx)
            .ok_or(MemError::OutOfRange { addr })?;
        *slot = value;
        Ok(())
    }

    // --- dirty tracking (undo log + incremental fingerprint) ---------------

    /// Starts tracking stores: every subsequent tracked write appends an
    /// `(addr, old word)` undo entry and updates the running fingerprint
    /// of the words below `fp_limit` (rounded down to a word boundary).
    /// The initial fingerprint is computed here with one full scan; from
    /// then on it is maintained in O(1) per store.
    ///
    /// Only [`Memory::store_tracked`] and [`Memory::store_kernel`]
    /// participate — the untracked [`Memory::store`] keeps the fast
    /// interpreter loop untouched, so callers that enable tracking must
    /// route user stores through the tracked path (the machine's
    /// instrumented loop does).
    pub fn enable_dirty(&mut self, fp_limit: DataAddr) {
        let fingerprint = self.fingerprint_scan(fp_limit);
        self.dirty = Some(DirtyState {
            undo: Vec::new(),
            fingerprint,
            fp_limit,
        });
    }

    /// Whether dirty tracking is enabled.
    pub fn dirty_enabled(&self) -> bool {
        self.dirty.is_some()
    }

    /// The running incremental fingerprint, if tracking is enabled.
    /// Always equal to [`Memory::fingerprint_scan`] of the limit passed
    /// to [`Memory::enable_dirty`].
    pub fn fingerprint(&self) -> Option<u64> {
        self.dirty.as_ref().map(|d| d.fingerprint)
    }

    /// XOR-fold fingerprint of the words strictly below `limit`, computed
    /// by scanning — the reference for the incremental value, and the
    /// fallback for callers without tracking enabled.
    pub fn fingerprint_scan(&self, limit: DataAddr) -> u64 {
        let n = ((limit / 4) as usize).min(self.words.len());
        let mut fp = 0u64;
        for (idx, &word) in self.words[..n].iter().enumerate() {
            fp ^= word_mix(idx as DataAddr * 4, word);
        }
        fp
    }

    /// Number of undo entries recorded since tracking was enabled (or the
    /// last rewind past this point). A checkpoint is just this mark.
    pub fn undo_len(&self) -> usize {
        self.dirty.as_ref().map_or(0, |d| d.undo.len())
    }

    /// Rewinds the undo log back to `mark`, restoring every word written
    /// since (newest first) and reverse-updating the fingerprint. Returns
    /// the number of entries replayed.
    ///
    /// # Panics
    ///
    /// Panics if dirty tracking is not enabled or `mark` exceeds the
    /// current log length.
    pub fn rewind_undo(&mut self, mark: usize) -> u64 {
        let d = self.dirty.as_mut().expect("dirty tracking enabled");
        assert!(mark <= d.undo.len(), "undo mark from a future checkpoint");
        let replayed = (d.undo.len() - mark) as u64;
        while d.undo.len() > mark {
            let (addr, old) = d.undo.pop().expect("len checked");
            let idx = (addr / 4) as usize;
            let new = self.words[idx];
            if addr < d.fp_limit {
                d.fingerprint ^= word_mix(addr, new) ^ word_mix(addr, old);
            }
            self.words[idx] = old;
        }
        replayed
    }

    /// Stores `value` at `addr` with dirty tracking (when enabled). Same
    /// access rules as [`Memory::store`]; this is the store the machine's
    /// instrumented loop uses, leaving the fast loop's untracked
    /// [`Memory::store`] untouched.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load`].
    pub fn store_tracked(&mut self, addr: DataAddr, value: u32) -> Result<(), MemError> {
        let idx = self.check(addr)?;
        if self.dirty.is_some() {
            self.track(addr, idx, value);
        }
        self.words[idx] = value;
        Ok(())
    }

    /// Records the undo entry and fingerprint delta for writing `value`
    /// over `words[idx]`. No-op when the write would not change the word
    /// (rewinding a same-value store restores the same value, and the
    /// fingerprint delta is zero).
    fn track(&mut self, addr: DataAddr, idx: usize, value: u32) {
        let Some(&old) = self.words.get(idx) else {
            return; // out-of-range store fails; nothing to track
        };
        if old == value {
            return;
        }
        let d = self.dirty.as_mut().expect("caller checked");
        d.undo.push((addr, old));
        if addr < d.fp_limit {
            d.fingerprint ^= word_mix(addr, old) ^ word_mix(addr, value);
        }
    }

    /// Snapshot of the residency map, for checkpointing under paging
    /// (`None` when paging is disabled — the common case costs nothing).
    pub fn residency(&self) -> Option<Vec<bool>> {
        self.paging.as_ref().map(|p| p.resident.clone())
    }

    /// Restores a residency snapshot taken by [`Memory::residency`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the paging configuration
    /// (present iff paging is enabled, same page count).
    pub fn restore_residency(&mut self, snapshot: &Option<Vec<bool>>) {
        match (&mut self.paging, snapshot) {
            (None, None) => {}
            (Some(p), Some(resident)) => {
                assert_eq!(p.resident.len(), resident.len(), "page count changed");
                p.resident.copy_from_slice(resident);
            }
            _ => panic!("residency snapshot does not match paging configuration"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut mem = Memory::new(64);
        mem.store(0, 1).unwrap();
        mem.store(60, u32::MAX).unwrap();
        assert_eq!(mem.load(0).unwrap(), 1);
        assert_eq!(mem.load(60).unwrap(), u32::MAX);
        assert_eq!(mem.load(4).unwrap(), 0);
    }

    #[test]
    fn size_rounds_up_to_word() {
        assert_eq!(Memory::new(5).len_bytes(), 8);
        assert_eq!(Memory::new(0).len_bytes(), 0);
    }

    #[test]
    fn alignment_and_bounds_are_enforced() {
        let mut mem = Memory::new(16);
        assert_eq!(mem.load(2), Err(MemError::Unaligned { addr: 2 }));
        assert_eq!(mem.store(17, 0), Err(MemError::Unaligned { addr: 17 }));
        assert_eq!(mem.load(16), Err(MemError::OutOfRange { addr: 16 }));
        assert_eq!(
            mem.store(1 << 30, 0),
            Err(MemError::OutOfRange { addr: 1 << 30 })
        );
    }

    #[test]
    fn paging_faults_until_resident() {
        let mut mem = Memory::new(1024);
        mem.enable_paging(PagingConfig {
            page_bytes: 256,
            max_resident: 0,
        });
        assert_eq!(mem.load(0), Err(MemError::NotResident { addr: 0 }));
        assert_eq!(mem.page_of(300), Some(1));
        mem.make_resident(0);
        assert_eq!(mem.load(0).unwrap(), 0);
        assert_eq!(mem.load(256), Err(MemError::NotResident { addr: 256 }));
        assert_eq!(mem.resident_pages(), 1);
        mem.evict_page(0);
        assert_eq!(mem.load(0), Err(MemError::NotResident { addr: 0 }));
    }

    #[test]
    fn undo_rewind_restores_words_and_fingerprint() {
        let mut mem = Memory::new(64);
        mem.store(0, 11).unwrap();
        mem.enable_dirty(32);
        let fp0 = mem.fingerprint().unwrap();
        assert_eq!(fp0, mem.fingerprint_scan(32));
        let mark = mem.undo_len();
        mem.store_tracked(0, 99).unwrap();
        mem.store_tracked(4, 1).unwrap();
        mem.store_kernel(8, 2).unwrap();
        mem.store_tracked(40, 7).unwrap(); // above fp_limit: logged, not folded
        assert_eq!(mem.undo_len(), mark + 4);
        assert_eq!(mem.fingerprint().unwrap(), mem.fingerprint_scan(32));
        assert_ne!(mem.fingerprint().unwrap(), fp0);
        assert_eq!(mem.rewind_undo(mark), 4);
        assert_eq!(mem.load(0).unwrap(), 11);
        assert_eq!(mem.load(4).unwrap(), 0);
        assert_eq!(mem.load(8).unwrap(), 0);
        assert_eq!(mem.load(40).unwrap(), 0);
        assert_eq!(mem.fingerprint().unwrap(), fp0);
    }

    #[test]
    fn same_value_stores_cost_no_undo_entries() {
        let mut mem = Memory::new(64);
        mem.enable_dirty(64);
        mem.store_tracked(0, 0).unwrap();
        mem.store_kernel(4, 0).unwrap();
        assert_eq!(mem.undo_len(), 0);
        mem.store_tracked(0, 5).unwrap();
        mem.store_tracked(0, 5).unwrap();
        assert_eq!(mem.undo_len(), 1);
    }

    #[test]
    fn nested_rewinds_unwind_in_checkpoint_order() {
        let mut mem = Memory::new(32);
        mem.enable_dirty(32);
        let outer = mem.undo_len();
        mem.store_tracked(0, 1).unwrap();
        let inner = mem.undo_len();
        mem.store_tracked(0, 2).unwrap();
        mem.store_tracked(4, 3).unwrap();
        assert_eq!(mem.rewind_undo(inner), 2);
        assert_eq!(mem.load(0).unwrap(), 1);
        assert_eq!(mem.load(4).unwrap(), 0);
        assert_eq!(mem.rewind_undo(outer), 1);
        assert_eq!(mem.load(0).unwrap(), 0);
        assert_eq!(mem.fingerprint().unwrap(), mem.fingerprint_scan(32));
    }

    #[test]
    fn kernel_access_bypasses_residency() {
        let mut mem = Memory::new(512);
        mem.enable_paging(PagingConfig::tiny());
        mem.store_kernel(8, 42).unwrap();
        assert_eq!(mem.load_kernel(8).unwrap(), 42);
        assert!(mem.load(8).is_err(), "user access still faults");
        assert!(mem.load_kernel(3).is_err());
        assert!(mem.load_kernel(4096).is_err());
    }
}
