use std::fmt;

use ras_isa::Inst;

/// Per-instruction-class cycle costs and kernel-path costs for one
/// processor architecture.
///
/// The instruction-class costs drive [`crate::Machine`]'s cycle accounting;
/// the kernel-path costs (`syscall_trap` and below) are charged by
/// `ras-kernel` when it models trap handling, context switching, and the
/// PC checks of the restartable-atomic-sequence strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Register-register and register-immediate ALU operations, `li`, `mv`.
    pub alu: u32,
    /// `lw` (cache-hit load).
    pub load: u32,
    /// `sw` (store, assuming a non-stalling write buffer).
    pub store: u32,
    /// Conditional branches (taken or not).
    pub branch: u32,
    /// `j`, `jal`, `jr`, `jalr`.
    pub jump: u32,
    /// `nop` and the landmark no-op.
    pub nop: u32,
    /// Extra per-call linkage cost beyond the jump instructions themselves
    /// (argument marshalling on CISC machines, register-window traffic on
    /// SPARC). Charged by the machine when executing `jal`/`jalr`.
    pub call_extra: u32,
    /// The memory-interlocked Test-And-Set instruction (total cost; the
    /// paper's §2.1 explains why this is often several times a plain
    /// access: bus locking, cache bypass, microcoded generality).
    pub interlocked: u32,
    /// Kernel trap entry + exit: save/restore state, dispatch, argument
    /// checks. On the R3000 the paper measures the whole emulated
    /// Test-And-Set at about 100 instructions (§2.3).
    pub syscall_trap: u32,
    /// The body of the kernel-emulated atomic operation itself.
    pub kernel_emul_body: u32,
    /// A full context switch (choose next thread, swap register state).
    pub context_switch: u32,
    /// The explicit-registration PC range check, "a few tens of cycles"
    /// added to the suspension path (§3.1).
    pub ras_check_registered: u32,
    /// The rseq strategy's preemption-time check: read the preempted
    /// thread's registered area word, load the published descriptor's four
    /// words, and compare the PC against the window. Slightly more than
    /// `ras_check_registered` because the descriptor is fetched from the
    /// guest's own memory, as Linux's `rseq_ip_fixup` does.
    pub rseq_check: u32,
    /// Stage 1 of the designated-sequence check: opcode hash-table probe
    /// (§3.2). Charged on every suspension.
    pub designated_stage1: u32,
    /// Stage 2 of the designated-sequence check: landmark verification.
    /// The paper reports the whole check adds about 2 µs on a 25 MHz
    /// R3000 in the common case.
    pub designated_stage2: u32,
    /// Kernel-side cost of redirecting a resumed thread through the fixed
    /// user-level recovery routine (§4.1's user-level detection), beyond
    /// the guest instructions the routine itself executes.
    pub user_restart_dispatch: u32,
    /// Servicing a page fault (I/O latency folded in), used by the paging
    /// extension.
    pub page_fault_service: u32,
}

impl CostModel {
    /// The cycles [`crate::Machine`] charges for executing `inst` —
    /// mirrors the execution core's accounting, so callers (e.g. the
    /// kernel's wasted-cycle attribution for rollbacks) can cost an
    /// instruction without executing it. `syscall` is zero here because
    /// its cost is the kernel's `syscall_trap`, charged at the trap.
    pub fn inst_cycles(&self, inst: &Inst) -> u64 {
        let cycles = match inst {
            Inst::Li { .. }
            | Inst::Alu { .. }
            | Inst::AluI { .. }
            | Inst::BeginAtomic
            | Inst::Halt => self.alu,
            Inst::Lw { .. } => self.load,
            Inst::Sw { .. } => self.store,
            Inst::Branch { .. } => self.branch,
            Inst::J { .. } | Inst::Jr { .. } => self.jump,
            Inst::Jal { .. } | Inst::Jalr { .. } => self.jump + self.call_extra,
            Inst::Nop | Inst::Landmark => self.nop,
            Inst::Tas { .. } => self.interlocked,
            Inst::Syscall => 0,
        };
        u64::from(cycles)
    }
}

impl Default for CostModel {
    /// The R3000-like single-cycle RISC model.
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            load: 1,
            store: 1,
            branch: 1,
            jump: 1,
            nop: 1,
            call_extra: 0,
            interlocked: 10,
            syscall_trap: 60,
            kernel_emul_body: 40,
            context_switch: 400,
            ras_check_registered: 20,
            rseq_check: 26,
            designated_stage1: 10,
            designated_stage2: 40,
            user_restart_dispatch: 30,
            page_fault_service: 20_000,
        }
    }
}

/// A processor architecture: a clock rate, a cost model, and feature flags.
///
/// The presets below are calibrated so that running the paper's actual
/// Test-And-Set sequences on the simulator lands near the microsecond
/// figures of Tables 1 and 4; the calibration inputs are period-accurate
/// clock rates and relative instruction costs (see `DESIGN.md` §5).
///
/// # Example
///
/// ```
/// use ras_machine::CpuProfile;
/// let p = CpuProfile::r3000();
/// assert_eq!(p.name(), "MIPS R3000");
/// assert!(!p.has_interlocked());
/// assert_eq!(p.micros(25), 1.0); // 25 cycles at 25 MHz
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuProfile {
    name: String,
    mhz: f64,
    cost: CostModel,
    has_interlocked: bool,
    has_restart_bit: bool,
}

impl CpuProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn custom(
        name: impl Into<String>,
        mhz: f64,
        cost: CostModel,
        has_interlocked: bool,
        has_restart_bit: bool,
    ) -> CpuProfile {
        assert!(mhz.is_finite() && mhz > 0.0, "clock rate must be positive");
        CpuProfile {
            name: name.into(),
            mhz,
            cost,
            has_interlocked,
            has_restart_bit,
        }
    }

    /// The architecture's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clock rate in MHz.
    pub fn mhz(&self) -> f64 {
        self.mhz
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable access to the cost model, for ablation experiments.
    pub fn cost_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Whether the architecture has a hardware interlocked Test-And-Set.
    pub fn has_interlocked(&self) -> bool {
        self.has_interlocked
    }

    /// Whether the architecture has an i860-style restartable-sequence bit.
    pub fn has_restart_bit(&self) -> bool {
        self.has_restart_bit
    }

    /// Converts a cycle count to microseconds at this clock rate.
    pub fn micros(&self, cycles: u64) -> f64 {
        cycles as f64 / self.mhz
    }

    /// MIPS R3000 at 25 MHz — the DECstation 5000/200 the paper measures in
    /// §5. No hardware atomic operations. The call-linkage cost reflects
    /// the subroutine linkage overhead the paper blames for the
    /// branch-vs-inline difference in Table 1.
    pub fn r3000() -> CpuProfile {
        CpuProfile::custom(
            "MIPS R3000",
            25.0,
            CostModel {
                call_extra: 3,
                ..CostModel::default()
            },
            false,
            false,
        )
    }

    /// DEC CVAX (µVAX III class, ~11 MHz). Microcoded CISC: slow memory
    /// ops, very slow interlocked instructions (BBSSI class).
    pub fn cvax() -> CpuProfile {
        CpuProfile::custom(
            "DEC CVAX",
            11.1,
            CostModel {
                alu: 2,
                load: 4,
                store: 3,
                branch: 3,
                jump: 3,
                nop: 2,
                call_extra: 5,
                interlocked: 24,
                syscall_trap: 120,
                kernel_emul_body: 60,
                context_switch: 500,
                ras_check_registered: 24,
                rseq_check: 40,
                designated_stage1: 12,
                designated_stage2: 48,
                user_restart_dispatch: 36,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// Motorola 68030 at 25 MHz. The TAS instruction is comparatively
    /// well-implemented, so hardware beats registered software here.
    pub fn m68030() -> CpuProfile {
        CpuProfile::custom(
            "Motorola 68030",
            25.0,
            CostModel {
                alu: 3,
                load: 7,
                store: 6,
                branch: 4,
                jump: 6,
                nop: 2,
                call_extra: 9,
                interlocked: 16,
                syscall_trap: 150,
                kernel_emul_body: 80,
                context_switch: 600,
                ras_check_registered: 30,
                rseq_check: 58,
                designated_stage1: 14,
                designated_stage2: 55,
                user_restart_dispatch: 40,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// Intel 386 at 16 MHz. An "overly rich set of atomic operations"
    /// (§2.1) with moderate lock-prefix cost.
    pub fn i386() -> CpuProfile {
        CpuProfile::custom(
            "Intel 386",
            16.0,
            CostModel {
                alu: 1,
                load: 3,
                store: 2,
                branch: 2,
                jump: 4,
                nop: 1,
                call_extra: 7,
                interlocked: 10,
                syscall_trap: 130,
                kernel_emul_body: 70,
                context_switch: 550,
                ras_check_registered: 26,
                rseq_check: 38,
                designated_stage1: 12,
                designated_stage2: 50,
                user_restart_dispatch: 36,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// Intel 486 at 33 MHz. Fast core, but the locked bus cycle keeps the
    /// interlocked form slower than registered software.
    pub fn i486() -> CpuProfile {
        CpuProfile::custom(
            "Intel 486",
            33.0,
            CostModel {
                alu: 1,
                load: 2,
                store: 1,
                branch: 3,
                jump: 4,
                nop: 1,
                call_extra: 6,
                interlocked: 20,
                syscall_trap: 100,
                kernel_emul_body: 50,
                context_switch: 450,
                ras_check_registered: 22,
                rseq_check: 30,
                designated_stage1: 10,
                designated_stage2: 45,
                user_restart_dispatch: 32,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// Intel i860 at 40 MHz. Has the hardware restartable-sequence bit
    /// discussed in §7 in addition to bus-locked atomics.
    pub fn i860() -> CpuProfile {
        CpuProfile::custom(
            "Intel 860",
            40.0,
            CostModel {
                alu: 1,
                load: 2,
                store: 1,
                branch: 2,
                jump: 3,
                nop: 1,
                call_extra: 5,
                interlocked: 9,
                syscall_trap: 90,
                kernel_emul_body: 45,
                context_switch: 420,
                ras_check_registered: 20,
                rseq_check: 28,
                designated_stage1: 9,
                designated_stage2: 40,
                user_restart_dispatch: 30,
                page_fault_service: 20_000,
            },
            true,
            true,
        )
    }

    /// Motorola 88000 at 25 MHz. `xmem` bypasses the on-chip cache
    /// ([Motorola 88100 88] in the paper), making hardware atomics costly
    /// on an otherwise single-cycle RISC.
    pub fn m88000() -> CpuProfile {
        CpuProfile::custom(
            "Motorola 88000",
            25.0,
            CostModel {
                alu: 1,
                load: 1,
                store: 1,
                branch: 1,
                jump: 1,
                nop: 1,
                call_extra: 2,
                interlocked: 19,
                syscall_trap: 70,
                kernel_emul_body: 40,
                context_switch: 400,
                ras_check_registered: 20,
                rseq_check: 26,
                designated_stage1: 10,
                designated_stage2: 40,
                user_restart_dispatch: 30,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// Sun SPARC at 25 MHz. Register windows make calls costlier; `ldstub`
    /// is a locked bus operation.
    pub fn sparc() -> CpuProfile {
        CpuProfile::custom(
            "Sun SPARC",
            25.0,
            CostModel {
                alu: 1,
                load: 4,
                store: 4,
                branch: 2,
                jump: 2,
                nop: 1,
                call_extra: 7,
                interlocked: 14,
                syscall_trap: 110,
                kernel_emul_body: 55,
                context_switch: 500,
                ras_check_registered: 22,
                rseq_check: 34,
                designated_stage1: 11,
                designated_stage2: 44,
                user_restart_dispatch: 33,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// HP 9000 Series 700 (PA-RISC) at 66 MHz. `ldcw` must address
    /// uncached memory, so the hardware path is an order of magnitude
    /// slower than the software sequence.
    pub fn hp_pa() -> CpuProfile {
        CpuProfile::custom(
            "HP 9000/700",
            66.0,
            CostModel {
                alu: 1,
                load: 1,
                store: 1,
                branch: 1,
                jump: 2,
                nop: 1,
                call_extra: 3,
                interlocked: 59,
                syscall_trap: 80,
                kernel_emul_body: 40,
                context_switch: 380,
                ras_check_registered: 18,
                rseq_check: 24,
                designated_stage1: 9,
                designated_stage2: 36,
                user_restart_dispatch: 28,
                page_fault_service: 20_000,
            },
            true,
            false,
        )
    }

    /// All Table 4 architectures, in the paper's row order.
    pub fn table4_lineup() -> Vec<CpuProfile> {
        vec![
            CpuProfile::cvax(),
            CpuProfile::m68030(),
            CpuProfile::i386(),
            CpuProfile::i486(),
            CpuProfile::i860(),
            CpuProfile::m88000(),
            CpuProfile::sparc(),
            CpuProfile::hp_pa(),
        ]
    }
}

impl fmt::Display for CpuProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} MHz", self.name, self.mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_conversion() {
        let p = CpuProfile::r3000();
        assert!((p.micros(25) - 1.0).abs() < 1e-12);
        assert!((p.micros(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn r3000_has_no_hardware_atomics() {
        let p = CpuProfile::r3000();
        assert!(!p.has_interlocked());
        assert!(!p.has_restart_bit());
    }

    #[test]
    fn i860_has_restart_bit_and_atomics() {
        let p = CpuProfile::i860();
        assert!(p.has_interlocked());
        assert!(p.has_restart_bit());
    }

    #[test]
    fn table4_lineup_is_complete_and_hardware_capable() {
        let lineup = CpuProfile::table4_lineup();
        assert_eq!(lineup.len(), 8);
        for p in &lineup {
            assert!(p.has_interlocked(), "{} must have hardware TAS", p.name());
            assert!(p.mhz() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn custom_rejects_bad_clock() {
        CpuProfile::custom("x", 0.0, CostModel::default(), false, false);
    }

    #[test]
    fn display_mentions_clock() {
        assert_eq!(CpuProfile::r3000().to_string(), "MIPS R3000 @ 25 MHz");
    }
}
