//! Cycle-counting CPU interpreter and per-architecture cost models for the
//! uniprocessor simulator.
//!
//! [`Machine`] executes predecoded [`ras_isa::DecodedProgram`]s against a
//! [`RegFile`] and a [`Memory`], charging cycles from a [`CpuProfile`]. The profiles are calibrated against the eight processor
//! architectures of Table 4 in *Fast Mutual Exclusion for Uniprocessors*
//! (plus the MIPS R3000 the rest of the paper measures), so that executing
//! the paper's actual instruction sequences reproduces the table's
//! structure: `explicit-registration ≈ designated + linkage` and the
//! hardware-vs-software crossovers.
//!
//! The machine knows nothing about threads: the kernel in `ras-kernel` owns
//! the register files and drives [`Machine::run`] with cycle deadlines to
//! model timer preemption.
//!
//! # Example
//!
//! ```
//! use ras_isa::{Asm, DecodedProgram, Reg};
//! use ras_machine::{CpuProfile, Exit, Machine, RegFile};
//!
//! let mut asm = Asm::new();
//! asm.li(Reg::T0, 21);
//! asm.add(Reg::V0, Reg::T0, Reg::T0);
//! asm.halt();
//! let program = DecodedProgram::new(&asm.finish()?);
//!
//! let mut machine = Machine::new(CpuProfile::r3000(), 4096);
//! let mut regs = RegFile::new(program.entry());
//! let exit = machine.run(&program, &mut regs, u64::MAX);
//! assert_eq!(exit, Exit::Halt);
//! assert_eq!(regs.get(Reg::V0), 42);
//! # Ok::<(), ras_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod memory;
mod profile;
mod regfile;
mod translate;

pub use crate::machine::{
    AccessKind, Exit, Fault, Machine, MachineCheckpoint, MemAccess, TraceEntry,
};
pub use crate::memory::{word_mix, MemError, Memory, PagingConfig};
pub use crate::profile::{CostModel, CpuProfile};
pub use crate::regfile::RegFile;
pub use crate::translate::{
    BlockExit, DeoptReason, EngineKind, TranslationCache, TranslationStats, NO_BLOCK,
};
