//! Instruction-mix accounting and the execution trace ring buffer.

use ras_isa::{Asm, DecodedProgram, Opcode, Reg};
use ras_machine::{CpuProfile, Exit, Machine, RegFile};

fn counting_program(n: i32) -> DecodedProgram {
    let mut asm = Asm::new();
    asm.li(Reg::T0, n);
    let top = asm.bind_new();
    asm.lw(Reg::T1, Reg::ZERO, 0);
    asm.sw(Reg::T1, Reg::ZERO, 0);
    asm.addi(Reg::T0, Reg::T0, -1);
    asm.bnez(Reg::T0, top);
    asm.halt();
    DecodedProgram::new(&asm.finish().unwrap())
}

#[test]
fn instruction_mix_counts_every_class_exactly() {
    let program = counting_program(10);
    let mut m = Machine::new(CpuProfile::r3000(), 64);
    m.enable_mix();
    let mut regs = RegFile::new(0);
    assert_eq!(m.run(&program, &mut regs, u64::MAX), Exit::Halt);
    let mix = m.instruction_mix();
    assert_eq!(mix[Opcode::Lw.index()], 10);
    assert_eq!(mix[Opcode::Sw.index()], 10);
    assert_eq!(mix[Opcode::AluI.index()], 10);
    assert_eq!(mix[Opcode::Branch.index()], 10);
    assert_eq!(mix[Opcode::Li.index()], 1);
    assert_eq!(mix[Opcode::Halt.index()], 1);
    assert_eq!(m.instructions_retired(), 42);
}

#[test]
fn trace_is_empty_unless_enabled() {
    let program = counting_program(3);
    let mut m = Machine::new(CpuProfile::r3000(), 64);
    let mut regs = RegFile::new(0);
    m.run(&program, &mut regs, u64::MAX);
    assert!(m.trace().is_empty());
}

#[test]
fn trace_keeps_the_last_n_in_order() {
    let program = counting_program(5);
    let mut m = Machine::new(CpuProfile::r3000(), 64);
    m.enable_trace(4);
    let mut regs = RegFile::new(0);
    m.run(&program, &mut regs, u64::MAX);
    let trace = m.trace();
    assert_eq!(trace.len(), 4);
    // Chronological order: clocks strictly increase.
    for pair in trace.windows(2) {
        assert!(pair[0].clock < pair[1].clock);
    }
    // The final entry is the halt.
    assert_eq!(trace.last().unwrap().inst.opcode(), Opcode::Halt);
    // The entry before it is the not-taken branch.
    assert_eq!(trace[2].inst.opcode(), Opcode::Branch);
}

#[test]
fn short_runs_fill_partially() {
    let program = counting_program(1);
    let mut m = Machine::new(CpuProfile::r3000(), 64);
    m.enable_trace(100);
    let mut regs = RegFile::new(0);
    m.run(&program, &mut regs, u64::MAX);
    let trace = m.trace();
    assert_eq!(trace.len() as u64, m.instructions_retired());
    assert_eq!(trace[0].pc, 0);
}

#[test]
#[should_panic(expected = "positive")]
fn zero_depth_trace_is_rejected() {
    Machine::new(CpuProfile::r3000(), 64).enable_trace(0);
}
