//! Property tests for the CPU interpreter: ALU semantics against a native
//! oracle, preemption-transparency of `run`, and the three-way
//! differential equivalence of the fast, instrumented, and translated
//! execution engines.

use proptest::prelude::*;
use ras_isa::{AluOp, Asm, DecodedProgram, Reg};
use ras_machine::{CpuProfile, Exit, Machine, RegFile, TranslationCache};

/// Which execution engine a differential replay drives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Replay {
    Fast,
    Instrumented,
    Translated,
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
    ]
}

proptest! {
    /// A straight-line program of random ALU ops computes exactly what the
    /// `AluOp::apply` oracle computes.
    #[test]
    fn alu_program_matches_oracle(
        ops in prop::collection::vec((arb_alu_op(), any::<i32>()), 1..40),
        seed: u32,
    ) {
        let mut asm = Asm::new();
        asm.li(Reg::T0, seed as i32);
        for (op, imm) in &ops {
            asm.alui(*op, Reg::T0, Reg::T0, *imm);
        }
        asm.halt();
        let program = DecodedProgram::new(&asm.finish().unwrap());

        let mut machine = Machine::new(CpuProfile::r3000(), 64);
        let mut regs = RegFile::new(0);
        prop_assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);

        let mut expect = seed;
        for (op, imm) in &ops {
            expect = op.apply(expect, *imm as u32);
        }
        prop_assert_eq!(regs.get(Reg::T0), expect);
    }

    /// Chopping execution into arbitrary deadline slices produces exactly
    /// the same final state and total cycle count as one uninterrupted run
    /// (no i860 bit involved). This is the property that makes kernel
    /// preemption transparent to correct (interference-free) programs.
    #[test]
    fn run_is_slice_transparent(
        slices in prop::collection::vec(1u64..50, 1..30),
        n in 1u32..200,
    ) {
        let build = || {
            let mut asm = Asm::new();
            asm.li(Reg::T0, n as i32);
            asm.li(Reg::T1, 0);
            let top = asm.bind_new();
            asm.addi(Reg::T1, Reg::T1, 3);
            asm.addi(Reg::T0, Reg::T0, -1);
            asm.bnez(Reg::T0, top);
            asm.halt();
            DecodedProgram::new(&asm.finish().unwrap())
        };
        let program = build();

        // Uninterrupted run.
        let mut m1 = Machine::new(CpuProfile::r3000(), 64);
        let mut r1 = RegFile::new(0);
        prop_assert_eq!(m1.run(&program, &mut r1, u64::MAX), Exit::Halt);

        // Sliced run: apply each deadline increment in turn, then finish.
        let mut m2 = Machine::new(CpuProfile::r3000(), 64);
        let mut r2 = RegFile::new(0);
        let mut deadline = 0;
        let mut done = false;
        for s in slices {
            deadline += s;
            match m2.run(&program, &mut r2, deadline) {
                Exit::Budget => {}
                Exit::Halt => { done = true; break; }
                other => prop_assert!(false, "unexpected exit {other:?}"),
            }
        }
        if !done {
            prop_assert_eq!(m2.run(&program, &mut r2, u64::MAX), Exit::Halt);
        }
        prop_assert_eq!(r2.get(Reg::T1), r1.get(Reg::T1));
        prop_assert_eq!(m2.clock(), m1.clock());
    }

    /// Stores then loads through guest code round-trip arbitrary values at
    /// arbitrary aligned addresses.
    #[test]
    fn guest_memory_roundtrip(vals in prop::collection::vec((0u32..200, any::<u32>()), 1..20)) {
        let mut asm = Asm::new();
        for (slot, v) in &vals {
            asm.li(Reg::T0, *v as i32);
            asm.li(Reg::A0, (slot * 4) as i32);
            asm.sw(Reg::T0, Reg::A0, 0);
        }
        asm.halt();
        let program = DecodedProgram::new(&asm.finish().unwrap());
        let mut machine = Machine::new(CpuProfile::r3000(), 1024);
        let mut regs = RegFile::new(0);
        prop_assert_eq!(machine.run(&program, &mut regs, u64::MAX), Exit::Halt);
        // Last write to each slot wins.
        let mut expect = std::collections::HashMap::new();
        for (slot, v) in &vals {
            expect.insert(slot * 4, *v);
        }
        for (addr, v) in expect {
            prop_assert_eq!(machine.mem().load(addr).unwrap(), v);
        }
    }

    /// The clock is monotone and total cycles equal the sum of per-class
    /// costs for straight-line code on any profile.
    #[test]
    fn cycle_accounting_is_exact(loads in 0u32..20, stores in 0u32..20, alus in 0u32..20) {
        for profile in [CpuProfile::r3000(), CpuProfile::cvax(), CpuProfile::sparc()] {
            let mut asm = Asm::new();
            for _ in 0..loads { asm.lw(Reg::T0, Reg::ZERO, 0); }
            for _ in 0..stores { asm.sw(Reg::T0, Reg::ZERO, 0); }
            for _ in 0..alus { asm.addi(Reg::T1, Reg::T1, 1); }
            asm.halt();
            let program = DecodedProgram::new(&asm.finish().unwrap());
            let mut machine = Machine::new(profile, 64);
            let mut regs = RegFile::new(0);
            machine.run(&program, &mut regs, u64::MAX);
            let c = *machine.profile().cost();
            let expect = u64::from(loads) * u64::from(c.load)
                + u64::from(stores) * u64::from(c.store)
                + u64::from(alus) * u64::from(c.alu)
                + u64::from(c.alu); // halt
            prop_assert_eq!(machine.clock(), expect);
        }
    }

    /// Three-way differential test of the execution engines: replaying a
    /// random program under random preemption slices on the fast loop, on
    /// the forced-instrumented loop, and through the translation tier
    /// (hot threshold 1, cache persisting across slices so compiled
    /// traces really execute) must observe identical (exit, pc, clock,
    /// register-file, memory-digest, restart-bit, retired-count) streams
    /// — on plain profiles, on one with hardware TAS, and on the i860
    /// with its restart bit (where some generated instructions fault as
    /// illegal, which must also match).
    #[test]
    fn fast_translated_and_instrumented_engines_are_equivalent(
        ops in prop::collection::vec((0u8..10, any::<i16>()), 1..60),
        slices in prop::collection::vec(1u64..8, 1..40),
    ) {
        for profile in [CpuProfile::r3000(), CpuProfile::i486(), CpuProfile::i860()] {
            let program = {
                let mut asm = Asm::new();
                let end = asm.label();
                asm.li(Reg::T2, 16);
                for (kind, imm) in &ops {
                    let off = i32::from(*imm) & 0x3c;
                    let _ = match kind % 10 {
                        0 => asm.li(Reg::T0, i32::from(*imm)),
                        1 => asm.addi(Reg::T0, Reg::T0, i32::from(*imm)),
                        2 => asm.add(Reg::T1, Reg::T0, Reg::T1),
                        3 => asm.sw(Reg::T0, Reg::ZERO, off),
                        4 => asm.lw(Reg::T1, Reg::ZERO, off),
                        5 => asm.bnez(Reg::T0, end),
                        6 => asm.begin_atomic(),
                        7 => asm.tas(Reg::V0, Reg::T2),
                        8 => asm.nop(),
                        _ => asm.add(Reg::T0, Reg::T1, Reg::T0),
                    };
                }
                asm.bind(end);
                asm.halt();
                DecodedProgram::new(&asm.finish().unwrap())
            };
            let replay = |mode: Replay| {
                let mut machine = Machine::new(profile.clone(), 256);
                machine.set_force_instrumented(mode == Replay::Instrumented);
                let mut cache = TranslationCache::new(&program, &profile, &[]).with_threshold(1);
                let mut regs = RegFile::new(0);
                let mut stream = Vec::new();
                let mut deadline = 0;
                for s in &slices {
                    deadline += *s;
                    let exit = match mode {
                        Replay::Translated => {
                            machine.run_translated(&program, &mut cache, &mut regs, deadline)
                        }
                        _ => machine.run(&program, &mut regs, deadline),
                    };
                    let mut digest = 0u64;
                    for addr in (0..256u32).step_by(4) {
                        digest = digest
                            .wrapping_mul(31)
                            .wrapping_add(u64::from(machine.mem().load(addr).unwrap()));
                    }
                    stream.push((
                        exit,
                        machine.clock(),
                        regs.clone(),
                        digest,
                        machine.atomic_restart_pc(),
                        machine.instructions_retired(),
                    ));
                    if exit != Exit::Budget {
                        break;
                    }
                }
                stream
            };
            let fast = replay(Replay::Fast);
            prop_assert_eq!(&fast, &replay(Replay::Instrumented));
            prop_assert_eq!(&fast, &replay(Replay::Translated));
        }
    }
}
