//! The guest/kernel ABI: syscall numbers and calling conventions.
//!
//! Both the kernel (`ras-kernel`) and the guest code generators
//! (`ras-guest`) depend on these constants, so they live in the ISA crate.
//!
//! # Calling convention
//!
//! * Syscall number in `$v0`, arguments in `$a0..$a3`, result in `$v0`.
//! * Function calls: arguments in `$a0..$a3`, result in `$v0`, return
//!   address in `$ra`; `$t*` are caller-saved, `$s*` callee-saved.
//! * `$gp` holds the current thread's id (written at spawn); the paper's
//!   discussion of Lamport's algorithm notes that a dedicated per-thread
//!   register changes the cost balance between its two packagings, and this
//!   register is how workloads obtain `i`.
//!
//! # Example
//!
//! Emit a `yield()` call:
//!
//! ```
//! use ras_isa::{abi, Asm, Reg};
//! let mut asm = Asm::new();
//! asm.li(Reg::V0, abi::SYS_YIELD as i32);
//! asm.syscall();
//! ```

/// Terminate the calling thread. No arguments. Does not return.
pub const SYS_EXIT: u32 = 0;

/// Voluntarily relinquish the processor to the scheduler.
pub const SYS_YIELD: u32 = 1;

/// Create a thread. `a0` = entry code address, `a1` = argument (delivered in
/// the child's `$a0`). Returns the new thread id in `v0`, or
/// [`ERR_NOMEM`] if no stack can be allocated.
pub const SYS_SPAWN: u32 = 2;

/// Kernel-emulated Test-And-Set (§2.3 of the paper). `a0` = byte address of
/// the lock word. Atomically loads the old value into `v0` and stores 1.
/// Costs roughly 100 instructions of kernel time, as measured on the R3000.
pub const SYS_TAS: u32 = 3;

/// Register the address space's restartable atomic sequence (§3.1).
/// `a0` = start code address, `a1` = length in instructions. Returns 0 on
/// success or [`ERR_UNSUPPORTED`] when the kernel was not built with
/// explicit-registration support — the caller is expected to overwrite the
/// sequence with a conventional mechanism, preserving binary compatibility.
pub const SYS_RAS_REGISTER: u32 = 4;

/// Futex-style wait: atomically re-checks that `mem[a0] == a1` and, if so,
/// blocks the calling thread on address `a0`. Returns 0 on wakeup, or 1
/// immediately if the value had already changed. This is the kernel half of
/// the paper's out-of-line `SlowAcquire` path (§3.2, Figure 5).
pub const SYS_WAIT: u32 = 5;

/// Wake up to `a1` threads blocked on address `a0`. Returns the number
/// woken in `v0`.
pub const SYS_WAKE: u32 = 6;

/// Read the low 32 bits of the machine's cycle counter into `v0`.
pub const SYS_CLOCK: u32 = 7;

/// Append `a0` to the kernel's output log (debug/telemetry channel).
pub const SYS_PRINT: u32 = 8;

/// Block until thread `a0` has exited. Returns 0, or [`ERR_NO_THREAD`] if
/// the id never existed.
pub const SYS_JOIN: u32 = 9;

/// Sleep for at least `a0` cycles: the thread leaves the run queue and is
/// made ready again once the machine clock has advanced that far.
pub const SYS_SLEEP: u32 = 10;

/// Register (or unregister) the calling thread's rseq area. `a0` = byte
/// address of the thread's rseq area word (which the guest later fills
/// with a published `RseqCs` descriptor address, or zero), `a1` = flags
/// ([`RSEQ_UNREGISTER`]). Returns 0 on success, [`ERR_BUSY`] on a second
/// registration or an unregistration with none active, and
/// [`ERR_UNSUPPORTED`] when the kernel does not run the rseq strategy —
/// mirroring Linux's `rseq(2)` `EBUSY`/`ENOSYS` contract.
pub const SYS_RSEQ: u32 = 11;

/// `SYS_RSEQ` flag bit: tear down the calling thread's registration
/// instead of establishing one.
pub const RSEQ_UNREGISTER: u32 = 1 << 0;

/// Error: requested facility is not supported by this kernel.
pub const ERR_UNSUPPORTED: u32 = u32::MAX; // -1

/// Error: resource exhaustion (e.g. no stack space for a new thread).
pub const ERR_NOMEM: u32 = u32::MAX - 1; // -2

/// Error: no such thread.
pub const ERR_NO_THREAD: u32 = u32::MAX - 2; // -3

/// Error: the resource is already (or not) registered — `SYS_RSEQ`'s
/// double-register / spurious-unregister result.
pub const ERR_BUSY: u32 = u32::MAX - 3; // -4

/// Default per-thread stack size, in bytes.
pub const DEFAULT_STACK_BYTES: u32 = 64 * 1024;

/// Human-readable name of a syscall number, for traces and errors.
pub fn syscall_name(number: u32) -> &'static str {
    match number {
        SYS_EXIT => "exit",
        SYS_YIELD => "yield",
        SYS_SPAWN => "spawn",
        SYS_TAS => "tas",
        SYS_RAS_REGISTER => "ras_register",
        SYS_WAIT => "wait",
        SYS_WAKE => "wake",
        SYS_CLOCK => "clock",
        SYS_PRINT => "print",
        SYS_JOIN => "join",
        SYS_SLEEP => "sleep",
        SYS_RSEQ => "rseq",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_numbers_are_distinct() {
        let nums = [
            SYS_EXIT,
            SYS_YIELD,
            SYS_SPAWN,
            SYS_TAS,
            SYS_RAS_REGISTER,
            SYS_WAIT,
            SYS_WAKE,
            SYS_CLOCK,
            SYS_PRINT,
            SYS_JOIN,
            SYS_SLEEP,
            SYS_RSEQ,
        ];
        for (i, a) in nums.iter().enumerate() {
            for b in &nums[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(syscall_name(SYS_TAS), "tas");
        assert_eq!(syscall_name(SYS_WAIT), "wait");
        assert_eq!(syscall_name(12345), "unknown");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn error_codes_do_not_collide_with_results() {
        assert!(ERR_UNSUPPORTED > ERR_NOMEM);
        assert!(ERR_NOMEM > ERR_NO_THREAD);
        assert!(ERR_NO_THREAD > ERR_BUSY);
        assert!(ERR_BUSY > 0xFFFF_0000);
        // All error codes are in the top page of the address space, far from
        // any valid thread id or lock value.
        assert!(ERR_NO_THREAD > 0xFFFF_0000);
    }
}
