use std::fmt;
use std::str::FromStr;

/// One of the 32 general-purpose registers.
///
/// Register 0 ([`Reg::ZERO`]) is hardwired to zero, as on the MIPS R3000.
/// The conventional names follow the MIPS o32 calling convention, which the
/// guest runtime in `ras-guest` also follows (see [`crate::abi`]).
///
/// # Example
///
/// ```
/// use ras_isa::Reg;
/// assert_eq!(Reg::A0.index(), 4);
/// assert_eq!(Reg::A0.to_string(), "$a0");
/// assert_eq!("$a0".parse::<Reg>().unwrap(), Reg::A0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary (unused by the assembler here; free scratch).
    pub const AT: Reg = Reg(1);
    /// First return-value register.
    pub const V0: Reg = Reg(2);
    /// Second return-value register.
    pub const V1: Reg = Reg(3);
    /// First argument register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved register 0.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg(25);
    /// Reserved for the kernel (scratch during traps).
    pub const K0: Reg = Reg(26);
    /// Reserved for the kernel (scratch during traps).
    pub const K1: Reg = Reg(27);
    /// Global pointer; the guest runtime stores the thread id here.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address, written by `jal`/`jalr`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// All 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The conventional MIPS o32 name, without the `$` sigil.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bare = s.strip_prefix('$').unwrap_or(s);
        if let Some(idx) = bare.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
            return Reg::new(idx).ok_or_else(|| ParseRegError(s.to_owned()));
        }
        Reg::all()
            .find(|r| r.name() == bare)
            .ok_or_else(|| ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_constants() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::V0.index(), 2);
        assert_eq!(Reg::A3.index(), 7);
        assert_eq!(Reg::T7.index(), 15);
        assert_eq!(Reg::S0.index(), 16);
        assert_eq!(Reg::GP.index(), 28);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for r in Reg::all() {
            let shown = r.to_string();
            assert_eq!(shown.parse::<Reg>().unwrap(), r, "roundtrip {shown}");
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn parse_numeric_form() {
        assert_eq!("$r4".parse::<Reg>().unwrap(), Reg::A0);
        assert_eq!("r31".parse::<Reg>().unwrap(), Reg::RA);
        assert!("$r32".parse::<Reg>().is_err());
        assert!("bogus".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::V0.is_zero());
    }

    #[test]
    fn all_yields_32_unique() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
