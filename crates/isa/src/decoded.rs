use crate::{CodeAddr, Inst, Program};

/// A program image flattened for execution: a dense array of predecoded
/// instructions indexed directly by word offset, with the opcode class of
/// each instruction precomputed.
///
/// [`crate::Program`] is the *linkable* image — it carries symbols,
/// declared sequence ranges, and supports [`crate::Program::patch`]. The
/// interpreter wants none of that on its fetch path: it wants one bounds
/// check and one indexed load per instruction. `DecodedProgram` is built
/// once (per boot, or after the last patch) and is immutable from then
/// on, so executors can hold it for the lifetime of a run and kernels can
/// share one decode between cloned snapshots.
///
/// # Example
///
/// ```
/// use ras_isa::{Asm, DecodedProgram, Reg};
///
/// let mut asm = Asm::new();
/// asm.li(Reg::T0, 1);
/// asm.halt();
/// let program = asm.finish()?;
/// let decoded = DecodedProgram::new(&program);
/// assert_eq!(decoded.len(), 2);
/// assert_eq!(decoded.fetch(0), Some(program.fetch(0).unwrap()));
/// assert_eq!(decoded.fetch(2), None);
/// # Ok::<(), ras_isa::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    code: Box<[Inst]>,
    /// `Opcode::index()` of each instruction, precomputed so instrumented
    /// executors can maintain an instruction-mix histogram with a single
    /// indexed add instead of re-classifying the instruction per retire.
    opcode_index: Box<[u8]>,
    entry: CodeAddr,
}

impl DecodedProgram {
    /// Flattens `program` into its executable form.
    pub fn new(program: &Program) -> DecodedProgram {
        let code: Box<[Inst]> = program.code().into();
        let opcode_index = code
            .iter()
            .map(|inst| inst.opcode().index() as u8)
            .collect();
        DecodedProgram {
            code,
            opcode_index,
            entry: program.entry(),
        }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The entry-point address carried over from the source program.
    pub fn entry(&self) -> CodeAddr {
        self.entry
    }

    /// Fetches the instruction at `addr`, or `None` past the end.
    #[inline(always)]
    pub fn fetch(&self, addr: CodeAddr) -> Option<Inst> {
        self.code.get(addr as usize).copied()
    }

    /// The precomputed [`Opcode::index`](crate::Opcode::index) of the
    /// instruction at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is past the end of the image.
    #[inline(always)]
    pub fn opcode_index(&self, addr: CodeAddr) -> usize {
        usize::from(self.opcode_index[addr as usize])
    }

    /// The whole predecoded instruction stream.
    pub fn code(&self) -> &[Inst] {
        &self.code
    }
}

impl From<&Program> for DecodedProgram {
    fn from(program: &Program) -> DecodedProgram {
        DecodedProgram::new(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Opcode, Reg};

    fn sample() -> Program {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 42);
        asm.lw(Reg::T1, Reg::ZERO, 0);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn decode_preserves_every_instruction_and_the_entry() {
        let p = sample();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), p.len());
        assert!(!d.is_empty());
        assert_eq!(d.entry(), p.entry());
        for addr in 0..p.len() as CodeAddr {
            assert_eq!(d.fetch(addr), p.fetch(addr));
        }
        assert_eq!(d.fetch(p.len() as CodeAddr), None);
        assert_eq!(d.code(), p.code());
    }

    #[test]
    fn opcode_indices_match_the_instructions() {
        let p = sample();
        let d = DecodedProgram::from(&p);
        for (addr, inst) in p.code().iter().enumerate() {
            assert_eq!(
                d.opcode_index(addr as CodeAddr),
                inst.opcode().index(),
                "@{addr}"
            );
        }
        assert_eq!(d.opcode_index(0), Opcode::Li.index());
    }

    #[test]
    fn decode_of_empty_program_is_empty() {
        let p = Asm::new().finish().unwrap();
        let d = DecodedProgram::new(&p);
        assert!(d.is_empty());
        assert_eq!(d.fetch(0), None);
    }
}
