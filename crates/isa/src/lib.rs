//! Instruction set, assembler, and program images for the uniprocessor
//! simulator used to reproduce *Fast Mutual Exclusion for Uniprocessors*
//! (Bershad, Redell & Ellis, ASPLOS 1992).
//!
//! The ISA is a small load/store RISC modeled on the MIPS R3000 the paper
//! measured: 32 general registers, word-oriented loads and stores, and a
//! handful of ALU and branch operations. Two instructions exist purely for
//! the paper's mechanisms:
//!
//! * [`Inst::Landmark`] — the "landmark no-op" a Taos-style compiler plants
//!   inside every designated restartable atomic sequence (§3.2 of the
//!   paper). It is never emitted under any other circumstance.
//! * [`Inst::Tas`] — a memory-interlocked Test-And-Set, standing in for the
//!   hardware atomic instructions surveyed in §6.
//!
//! Code is Harvard-style: a program is a vector of [`Inst`] and the program
//! counter is an instruction index, while data memory is byte-addressed with
//! aligned 32-bit words. This keeps the designated-sequence matcher in the
//! kernel honest (it inspects real instruction streams) without requiring a
//! binary encoder.
//!
//! # Example
//!
//! Assemble and inspect a tiny function that adds its two arguments:
//!
//! ```
//! use ras_isa::{Asm, Reg};
//!
//! let mut asm = Asm::new();
//! asm.bind_symbol("add2");
//! asm.add(Reg::V0, Reg::A0, Reg::A1);
//! asm.jr(Reg::RA);
//! let program = asm.finish().expect("labels resolve");
//! assert_eq!(program.symbol("add2"), Some(0));
//! assert_eq!(program.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
mod asm;
mod blocks;
mod decoded;
mod encode;
mod error;
pub mod idiom;
mod inst;
mod layout;
mod parse;
mod program;
mod reg;
mod rseq;
mod seq;

pub use asm::{Asm, Label};
pub use blocks::{BasicBlock, BlockMap};
pub use decoded::DecodedProgram;
pub use encode::{decode_inst, encode_inst, DecodeError};
pub use error::AsmError;
pub use inst::{AluOp, Cond, Inst, Opcode};
pub use layout::{DataImage, DataLayout};
pub use parse::{parse_asm, ParseAsmError};
pub use program::Program;
pub use reg::Reg;
pub use rseq::{RseqCs, RSEQ_CS_NO_RESTART_ON_PREEMPT, RSEQ_CS_WORDS};
pub use seq::SeqRange;

/// A code address: an index into a program's instruction vector.
pub type CodeAddr = u32;

/// A data address: a byte offset into simulated data memory.
pub type DataAddr = u32;
