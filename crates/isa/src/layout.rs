use std::collections::BTreeMap;

use crate::DataAddr;

/// Builder for a program's static data segment.
///
/// Allocates aligned words and arrays at increasing byte addresses and
/// records named symbols for them. The result is a [`DataImage`] that the
/// kernel copies into simulated memory at load time.
///
/// # Example
///
/// ```
/// use ras_isa::DataLayout;
///
/// let mut data = DataLayout::new();
/// let lock = data.word("lock", 0);
/// let counter = data.word("counter", 0);
/// let buf = data.array("buf", 16, 0);
/// assert_eq!(lock, 0);
/// assert_eq!(counter, 4);
/// assert_eq!(buf, 8);
/// let image = data.finish();
/// assert_eq!(image.symbol("buf"), Some(8));
/// assert_eq!(image.len_bytes(), 8 + 16 * 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DataLayout {
    cursor: DataAddr,
    symbols: BTreeMap<String, DataAddr>,
    init: Vec<(DataAddr, u32)>,
}

impl DataLayout {
    /// Creates an empty layout starting at byte address 0.
    pub fn new() -> DataLayout {
        DataLayout::default()
    }

    /// Creates a layout whose first allocation lands at `base` (must be
    /// 4-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn with_base(base: DataAddr) -> DataLayout {
        assert_eq!(base % 4, 0, "data base must be word-aligned");
        DataLayout {
            cursor: base,
            ..DataLayout::default()
        }
    }

    /// The next free byte address.
    pub fn cursor(&self) -> DataAddr {
        self.cursor
    }

    /// Allocates one word, initialized to `value`, under `name`.
    /// Returns its byte address.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already allocated.
    pub fn word(&mut self, name: &str, value: u32) -> DataAddr {
        self.array_init(name, &[value])
    }

    /// Allocates `len` words all initialized to `fill`. Returns the base
    /// byte address.
    pub fn array(&mut self, name: &str, len: usize, fill: u32) -> DataAddr {
        let addr = self.cursor;
        self.insert_symbol(name, addr);
        for i in 0..len {
            if fill != 0 {
                self.init.push((addr + 4 * i as DataAddr, fill));
            }
        }
        self.cursor += 4 * len as DataAddr;
        addr
    }

    /// Allocates and initializes an array from explicit values.
    pub fn array_init(&mut self, name: &str, values: &[u32]) -> DataAddr {
        let addr = self.cursor;
        self.insert_symbol(name, addr);
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                self.init.push((addr + 4 * i as DataAddr, v));
            }
        }
        self.cursor += 4 * values.len() as DataAddr;
        addr
    }

    /// Overwrites the initial value of an already-allocated word.
    ///
    /// This supports two-phase construction: allocate placeholder words
    /// first (so code being assembled can refer to their addresses), then
    /// patch in values that are only known after assembly — e.g. an rseq
    /// descriptor's code addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or was never allocated.
    pub fn set_word(&mut self, addr: DataAddr, value: u32) {
        assert_eq!(addr % 4, 0, "set_word address {addr:#x} is unaligned");
        assert!(
            addr < self.cursor,
            "set_word address {addr:#x} was never allocated (cursor {:#x})",
            self.cursor
        );
        self.init.retain(|&(a, _)| a != addr);
        if value != 0 {
            self.init.push((addr, value));
        }
    }

    /// Advances the cursor so the next allocation is aligned to `align`
    /// bytes (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or not a multiple of 4.
    pub fn align(&mut self, align: DataAddr) {
        assert!(
            align.is_power_of_two() && align >= 4,
            "bad alignment {align}"
        );
        self.cursor = self.cursor.div_ceil(align) * align;
    }

    /// Looks up a previously allocated symbol.
    pub fn symbol(&self, name: &str) -> Option<DataAddr> {
        self.symbols.get(name).copied()
    }

    fn insert_symbol(&mut self, name: &str, addr: DataAddr) {
        let prev = self.symbols.insert(name.to_owned(), addr);
        assert!(prev.is_none(), "data symbol `{name}` allocated twice");
    }

    /// Finalizes the layout into an image.
    pub fn finish(self) -> DataImage {
        DataImage {
            len_bytes: self.cursor,
            symbols: self.symbols,
            init: self.init,
        }
    }
}

/// A finalized static data segment: total size, symbols, and nonzero
/// initializers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataImage {
    len_bytes: DataAddr,
    symbols: BTreeMap<String, DataAddr>,
    init: Vec<(DataAddr, u32)>,
}

impl DataImage {
    /// Total segment size in bytes (allocation high-water mark).
    pub fn len_bytes(&self) -> DataAddr {
        self.len_bytes
    }

    /// Looks up a named allocation.
    pub fn symbol(&self, name: &str) -> Option<DataAddr> {
        self.symbols.get(name).copied()
    }

    /// Nonzero initial values as `(byte_address, value)` pairs.
    pub fn initializers(&self) -> &[(DataAddr, u32)] {
        &self.init
    }

    /// Iterates over `(name, address)` pairs in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, DataAddr)> {
        self.symbols.iter().map(|(n, a)| (n.as_str(), *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocation() {
        let mut d = DataLayout::new();
        assert_eq!(d.word("a", 7), 0);
        assert_eq!(d.word("b", 0), 4);
        assert_eq!(d.array("c", 3, 5), 8);
        assert_eq!(d.cursor(), 20);
        let img = d.finish();
        assert_eq!(img.len_bytes(), 20);
        assert_eq!(img.symbol("a"), Some(0));
        assert_eq!(img.symbol("c"), Some(8));
        // a=7 plus three fills of 5.
        assert_eq!(img.initializers().len(), 4);
    }

    #[test]
    fn zero_initializers_are_elided() {
        let mut d = DataLayout::new();
        d.word("z", 0);
        d.array("zz", 8, 0);
        let img = d.finish();
        assert!(img.initializers().is_empty());
        assert_eq!(img.len_bytes(), 36);
    }

    #[test]
    fn with_base_offsets_allocations() {
        let mut d = DataLayout::with_base(0x1000);
        assert_eq!(d.word("a", 1), 0x1000);
    }

    #[test]
    fn align_rounds_up() {
        let mut d = DataLayout::new();
        d.word("a", 0);
        d.align(64);
        assert_eq!(d.word("b", 0), 64);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_name_panics() {
        let mut d = DataLayout::new();
        d.word("a", 0);
        d.word("a", 1);
    }

    #[test]
    fn set_word_patches_allocated_slots() {
        let mut d = DataLayout::new();
        d.word("a", 7);
        let arr = d.array("arr", 4, 0);
        d.set_word(arr + 8, 99);
        d.set_word(0, 0); // clear `a`
        let img = d.finish();
        assert_eq!(img.initializers(), &[(arr + 8, 99)]);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn set_word_rejects_unallocated_address() {
        let mut d = DataLayout::new();
        d.word("a", 0);
        d.set_word(4, 1);
    }

    #[test]
    fn array_init_records_values() {
        let mut d = DataLayout::new();
        d.array_init("v", &[1, 0, 3]);
        let img = d.finish();
        assert_eq!(img.initializers(), &[(0, 1), (8, 3)]);
    }
}
