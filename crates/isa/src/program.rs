use std::collections::BTreeMap;
use std::fmt;

use crate::{CodeAddr, Inst, RseqCs, SeqRange};

/// An assembled program image: the code, its named symbols, and its entry
/// point.
///
/// The image is mutable through [`Program::patch`] to support the paper's
/// binary-compatibility story (§3.1): when registering a restartable atomic
/// sequence fails on a kernel that does not support them, the thread
/// management package *overwrites* the sequence with code that uses a
/// conventional mechanism.
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    code: Vec<Inst>,
    symbols: BTreeMap<String, CodeAddr>,
    entry: CodeAddr,
    seq_ranges: Vec<SeqRange>,
    rseq_descs: Vec<RseqCs>,
}

impl Program {
    pub(crate) fn new(
        code: Vec<Inst>,
        symbols: BTreeMap<String, CodeAddr>,
        entry: CodeAddr,
        seq_ranges: Vec<SeqRange>,
        rseq_descs: Vec<RseqCs>,
    ) -> Program {
        Program {
            code,
            symbols,
            entry,
            seq_ranges,
            rseq_descs,
        }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The entry-point address of the main thread.
    pub fn entry(&self) -> CodeAddr {
        self.entry
    }

    /// Returns the same program with a different entry point.
    pub fn with_entry(mut self, entry: CodeAddr) -> Program {
        self.entry = entry;
        self
    }

    /// Fetches the instruction at `addr`, or `None` past the end.
    pub fn fetch(&self, addr: CodeAddr) -> Option<Inst> {
        self.code.get(addr as usize).copied()
    }

    /// A view of the whole instruction stream.
    pub fn code(&self) -> &[Inst] {
        &self.code
    }

    /// The restartable atomic sequences declared while assembling (see
    /// [`crate::Asm::declare_seq`]), in declaration order.
    ///
    /// This is in-memory analysis metadata: it is *not* part of the binary
    /// image produced by [`Program::to_bytes`], just as real RAS binaries
    /// carry their sequence ranges out of band (registration calls or
    /// landmark conventions, §3 of the paper).
    pub fn seq_ranges(&self) -> &[SeqRange] {
        &self.seq_ranges
    }

    /// Declares a restartable sequence on an already-built image. The
    /// assembler-time path is [`crate::Asm::declare_seq`]; this one serves
    /// tools that learn ranges out of band — lint command-line flags,
    /// landmark detection — after parsing or decoding an image.
    pub fn declare_seq(&mut self, range: SeqRange) {
        self.seq_ranges.push(range);
    }

    /// The rseq critical-section descriptors declared while assembling
    /// (see [`crate::Asm::declare_rseq`]), in declaration order.
    ///
    /// Like [`Program::seq_ranges`] this is in-memory analysis metadata;
    /// the runtime contract is carried by the descriptor's four data words
    /// and the per-thread registration syscall.
    pub fn rseq_descs(&self) -> &[RseqCs] {
        &self.rseq_descs
    }

    /// Declares an rseq descriptor on an already-built image, for tools
    /// that learn descriptors out of band.
    pub fn declare_rseq(&mut self, desc: RseqCs) {
        self.rseq_descs.push(desc);
    }

    /// Looks up a named symbol (function entry, sequence start, …).
    pub fn symbol(&self, name: &str) -> Option<CodeAddr> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(name, address)` pairs in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, CodeAddr)> {
        self.symbols.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Overwrites the instructions starting at `start` with `replacement`,
    /// padding with [`Inst::Nop`] up to `len` if the replacement is shorter.
    ///
    /// This models the Mach thread package rewriting its registered
    /// Test-And-Set sequence when the kernel rejects registration (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if `replacement.len() > len` or if `start + len` runs past the
    /// end of the image — both are code-generation bugs, not runtime
    /// conditions.
    pub fn patch(&mut self, start: CodeAddr, len: usize, replacement: &[Inst]) {
        assert!(
            replacement.len() <= len,
            "replacement of {} instructions does not fit in a {len}-instruction window",
            replacement.len()
        );
        let start = start as usize;
        assert!(start + len <= self.code.len(), "patch window out of bounds");
        for (i, slot) in self.code[start..start + len].iter_mut().enumerate() {
            *slot = replacement.get(i).copied().unwrap_or(Inst::Nop);
        }
        // The rewritten window no longer holds the code any overlapping
        // declared sequence described; drop those declarations so static
        // analysis does not verify stale ranges.
        let window = SeqRange {
            start: start as CodeAddr,
            len: len as u32,
        };
        self.seq_ranges.retain(|r| !r.overlaps(window));
        self.rseq_descs.retain(|d| !d.window().overlaps(window));
    }

    /// Renders a human-readable listing with addresses and symbols.
    pub fn disassemble(&self) -> String {
        let by_addr: BTreeMap<CodeAddr, Vec<&str>> =
            self.symbols.iter().fold(BTreeMap::new(), |mut m, (n, a)| {
                m.entry(*a).or_default().push(n);
                m
            });
        let mut out = String::new();
        for (addr, inst) in self.code.iter().enumerate() {
            if let Some(names) = by_addr.get(&(addr as CodeAddr)) {
                for name in names {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            out.push_str(&format!("  @{addr:<6} {inst}\n"));
        }
        out
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("len", &self.code.len())
            .field("entry", &self.entry)
            .field("symbols", &self.symbols)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn sample() -> Program {
        let mut asm = Asm::new();
        asm.bind_symbol("main");
        asm.li(Reg::T0, 42);
        asm.bind_symbol("spot");
        asm.nop();
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn fetch_and_symbols() {
        let p = sample();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.symbol("main"), Some(0));
        assert_eq!(p.symbol("spot"), Some(1));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.fetch(2), Some(Inst::Halt));
        assert_eq!(p.fetch(3), None);
    }

    #[test]
    fn patch_overwrites_and_pads() {
        let mut p = sample();
        p.patch(0, 2, &[Inst::Halt]);
        assert_eq!(p.fetch(0), Some(Inst::Halt));
        assert_eq!(p.fetch(1), Some(Inst::Nop), "padded with nop");
        assert_eq!(p.fetch(2), Some(Inst::Halt), "outside window untouched");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn patch_rejects_oversized_replacement() {
        let mut p = sample();
        p.patch(0, 1, &[Inst::Nop, Inst::Nop]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn patch_rejects_out_of_bounds() {
        let mut p = sample();
        p.patch(2, 5, &[Inst::Nop]);
    }

    #[test]
    fn disassembly_mentions_symbols_and_addresses() {
        let p = sample();
        let text = p.disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("spot:"));
        assert!(text.contains("@0"));
        assert!(text.contains("halt"));
    }
}
