//! Decoded lock-idiom metadata: the instruction shapes the guest runtime
//! uses to acquire and release locks, recognized at the ISA layer so
//! static analyses (`ras-analyze`) and the guest codegen agree on what a
//! Test-And-Set, a zero-test, and a release look like.
//!
//! Everything here is purely syntactic — no dataflow. Where an idiom
//! depends on a register's *value* (a lock address reaching `$a0`, a
//! syscall number reaching `$v0` through a join), a dataflow client
//! refines these answers; these helpers cover the directly-decodable
//! core every emitter in `ras-guest` produces.

use crate::abi;
use crate::{CodeAddr, Cond, Inst, Opcode, Reg};

/// A conditional branch testing one register against zero (`beqz`/`bnez`
/// shapes: one comparand is `$zero`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ZeroTest {
    /// The register being tested.
    pub reg: Reg,
    /// `true` if the *taken* edge is the `reg == 0` outcome (i.e. the
    /// branch is `beqz`); `false` if the fall-through edge is.
    pub zero_when_taken: bool,
}

/// Decodes a branch comparing `reg` against the hardwired zero register.
///
/// This is the acquire decision of every TAS-based lock: the old value of
/// the lock word is zero-tested, and the zero edge is the "was free, now
/// mine" path.
pub fn zero_test(inst: &Inst) -> Option<ZeroTest> {
    let Inst::Branch { cond, rs, rt, .. } = *inst else {
        return None;
    };
    let reg = match (rs.is_zero(), rt.is_zero()) {
        (false, true) => rs,
        (true, false) => rt,
        _ => return None,
    };
    match cond {
        Cond::Eq => Some(ZeroTest {
            reg,
            zero_when_taken: true,
        }),
        Cond::Ne => Some(ZeroTest {
            reg,
            zero_when_taken: false,
        }),
        _ => None,
    }
}

/// Decodes a release-shaped store: `sw $zero, off(base)` — the atomic
/// clear of Figure 3, the only way any mechanism releases a raw lock.
/// Returns the addressing pair.
pub fn release_store(inst: &Inst) -> Option<(Reg, i32)> {
    match *inst {
        Inst::Sw { rs, base, off } if rs.is_zero() => Some((base, off)),
        _ => None,
    }
}

/// The syscall number statically visible at the `syscall` at `pc`: walks
/// backward over instructions that neither write `$v0` nor transfer
/// control, looking for the `li $v0, N` every `ras-guest` call sequence
/// emits. Returns `None` when the number is set indirectly (a dataflow
/// client can still resolve those through constant propagation).
pub fn static_syscall_number(code: &[Inst], pc: CodeAddr) -> Option<i32> {
    if code.get(pc as usize)?.opcode() != Opcode::Syscall {
        return None;
    }
    let mut at = pc;
    for _ in 0..8 {
        at = at.checked_sub(1)?;
        let inst = code.get(at as usize)?;
        if let Inst::Li { rd, imm } = *inst {
            if rd == Reg::V0 {
                return Some(imm);
            }
            continue;
        }
        if inst.def() == Some(Reg::V0) || inst.is_control() {
            return None;
        }
    }
    None
}

/// Whether the statically-visible syscall at `pc` is the kernel-emulated
/// Test-And-Set trap (§2.3).
pub fn is_tas_syscall(code: &[Inst], pc: CodeAddr) -> bool {
    static_syscall_number(code, pc) == Some(abi::SYS_TAS as i32)
}

/// A load→store window over one memory word — the body shape shared by
/// every software Test-And-Set and designated read-modify-write sequence
/// (Figures 4 and 5, and the xchg/cas/faa sequences of §4.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RmwWindow {
    /// Address of the load.
    pub load_pc: CodeAddr,
    /// Address of the committing store.
    pub store_pc: CodeAddr,
    /// Base register of both accesses.
    pub base: Reg,
    /// Byte offset of both accesses.
    pub off: i32,
    /// The register the store writes back (the "set" value).
    pub stored: Reg,
}

/// From a load at `load_pc`, scans forward (strictly below `limit`) for a
/// store back to the *same* addressing pair, with the base register intact
/// in between — the committing store of a TAS-shaped window. Interior
/// branches are skipped (the inline TAS and CAS shapes branch out before
/// their store); calls, syscalls, other stores to the same base, and any
/// redefinition of the base end the scan.
pub fn rmw_window(code: &[Inst], load_pc: CodeAddr, limit: CodeAddr) -> Option<RmwWindow> {
    let Inst::Lw { base, off, .. } = *code.get(load_pc as usize)? else {
        return None;
    };
    let limit = limit.min(code.len() as CodeAddr);
    for pc in load_pc + 1..limit {
        let inst = code.get(pc as usize)?;
        match *inst {
            Inst::Sw {
                rs,
                base: sb,
                off: so,
            } => {
                if sb == base && so == off {
                    return Some(RmwWindow {
                        load_pc,
                        store_pc: pc,
                        base,
                        off,
                        stored: rs,
                    });
                }
                return None;
            }
            Inst::Syscall | Inst::Tas { .. } | Inst::BeginAtomic | Inst::Halt => return None,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Jr { .. } | Inst::J { .. } => return None,
            _ => {
                if inst.def() == Some(base) {
                    return None;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    #[test]
    fn zero_tests_decode_both_polarities() {
        let mut asm = Asm::new();
        let out = asm.label();
        asm.beqz(Reg::V0, out);
        asm.bnez(Reg::T0, out);
        asm.blt(Reg::V0, Reg::ZERO, out);
        asm.beq(Reg::T1, Reg::T2, out);
        asm.bind(out);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            zero_test(&p.fetch(0).unwrap()),
            Some(ZeroTest {
                reg: Reg::V0,
                zero_when_taken: true
            })
        );
        assert_eq!(
            zero_test(&p.fetch(1).unwrap()),
            Some(ZeroTest {
                reg: Reg::T0,
                zero_when_taken: false
            })
        );
        assert_eq!(
            zero_test(&p.fetch(2).unwrap()),
            None,
            "blt is not a zero test"
        );
        assert_eq!(zero_test(&p.fetch(3).unwrap()), None, "two live comparands");
    }

    #[test]
    fn release_store_requires_the_zero_register() {
        let clear = Inst::Sw {
            rs: Reg::ZERO,
            base: Reg::A0,
            off: 4,
        };
        assert_eq!(release_store(&clear), Some((Reg::A0, 4)));
        let set = Inst::Sw {
            rs: Reg::T0,
            base: Reg::A0,
            off: 4,
        };
        assert_eq!(release_store(&set), None);
    }

    #[test]
    fn syscall_numbers_scan_past_argument_setup() {
        // The spawn sequence loads the number first, then arguments.
        let mut asm = Asm::new();
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li(Reg::A0, 9);
        asm.syscall();
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.mv(Reg::V0, Reg::T0); // number comes from a register: opaque
        asm.syscall();
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(
            static_syscall_number(p.code(), 2),
            Some(abi::SYS_SPAWN as i32)
        );
        assert!(is_tas_syscall(p.code(), 4));
        assert_eq!(static_syscall_number(p.code(), 6), None);
        assert_eq!(static_syscall_number(p.code(), 0), None, "not a syscall");
    }

    #[test]
    fn rmw_windows_match_the_tas_shapes() {
        // Figure 5's inline TAS: lw; li; bnez; landmark; sw.
        let mut asm = Asm::new();
        let out = asm.label();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.bnez(Reg::V0, out);
        asm.landmark();
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.bind(out);
        asm.halt();
        let p = asm.finish().unwrap();
        let w = rmw_window(p.code(), 0, p.len() as CodeAddr).unwrap();
        assert_eq!(
            (w.store_pc, w.base, w.off, w.stored),
            (4, Reg::A0, 0, Reg::T0)
        );
    }

    #[test]
    fn rmw_windows_stop_at_base_redefinition_and_calls() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::A0, 64); // base redefined: different word
        asm.sw(Reg::V0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(rmw_window(p.code(), 0, p.len() as CodeAddr), None);

        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.jal_to(3);
        asm.sw(Reg::V0, Reg::A0, 0);
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        assert_eq!(rmw_window(p.code(), 0, p.len() as CodeAddr), None);
    }
}
