use std::fmt;

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`crate::Asm::bind`].
    UnboundLabel {
        /// The label's internal id.
        label: usize,
        /// Address of the first instruction that referenced it.
        first_use: u32,
    },
    /// A label was bound twice.
    RebonudLabel {
        /// The label's internal id.
        label: usize,
    },
    /// A symbol name was bound twice.
    DuplicateSymbol {
        /// The duplicated name.
        name: String,
    },
    /// The program grew past the addressable limit.
    ProgramTooLarge {
        /// Number of instructions emitted.
        len: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, first_use } => {
                write!(
                    f,
                    "label #{label} first used at @{first_use} was never bound"
                )
            }
            AsmError::RebonudLabel { label } => write!(f, "label #{label} bound twice"),
            AsmError::DuplicateSymbol { name } => write!(f, "symbol `{name}` bound twice"),
            AsmError::ProgramTooLarge { len } => {
                write!(
                    f,
                    "program of {len} instructions exceeds the addressable limit"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}
