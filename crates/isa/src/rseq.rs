use crate::{CodeAddr, DataAddr, SeqRange};

/// Descriptor flag: do not abort the critical section on preemption.
///
/// The modern `rseq` ABI carries per-descriptor flags that suppress the
/// abort on selected kernel events; this simulator models the preemption
/// bit. A window carrying this flag is *not* atomic under preemption —
/// the static abort-safety pass treats it like undeclared code — but the
/// flag is part of the ABI so experiments can measure exactly what the
/// abort machinery buys.
pub const RSEQ_CS_NO_RESTART_ON_PREEMPT: u32 = 1 << 0;

/// Number of data words a descriptor occupies in guest memory.
pub const RSEQ_CS_WORDS: usize = 4;

/// An rseq-style critical-section descriptor: the window a preemption
/// aborts out of, and where the abort lands.
///
/// This is the simulator's rendition of Linux's `struct rseq_cs`. The
/// in-memory form is [`RSEQ_CS_WORDS`] consecutive words at
/// [`RseqCs::cs_addr`] — `{start_ip, post_commit_offset, abort_ip,
/// flags}` — which the guest *publishes* by storing `cs_addr` into its
/// registered per-thread rseq area word. The kernel consults the
/// published descriptor when it preempts the thread: a PC inside
/// `[start_ip, start_ip + post_commit_offset)` is redirected to
/// `abort_ip` instead of being restarted from the top as the paper's
/// restartable atomic sequences are.
///
/// Like [`SeqRange`] declarations, the struct itself is in-memory
/// analysis metadata (see [`crate::Program::rseq_descs`]); the kernel
/// only ever reads the four data words.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RseqCs {
    /// First instruction of the critical-section window.
    pub start_ip: CodeAddr,
    /// Window length in instructions: the committing store is the last
    /// instruction inside, at `start_ip + post_commit_offset - 1`, and a
    /// PC of `start_ip + post_commit_offset` has already committed.
    pub post_commit_offset: u32,
    /// Where an aborted thread resumes. Must lie strictly outside the
    /// window and be reachable only via abort.
    pub abort_ip: CodeAddr,
    /// Descriptor flags ([`RSEQ_CS_NO_RESTART_ON_PREEMPT`]).
    pub flags: u32,
    /// Byte address of the descriptor's four words in guest data memory —
    /// also the value the guest stores to publish the descriptor, which
    /// is how the static pass recognizes re-registration stores.
    pub cs_addr: DataAddr,
}

impl RseqCs {
    /// The critical-section window as a code range.
    pub fn window(self) -> SeqRange {
        SeqRange {
            start: self.start_ip,
            len: self.post_commit_offset,
        }
    }

    /// First PC past the window: a thread suspended here has committed.
    pub fn post_commit_ip(self) -> CodeAddr {
        self.start_ip + self.post_commit_offset
    }

    /// Whether a preemption at `pc` aborts this descriptor's section.
    /// Half-open: the first instruction aborts (the abort handler simply
    /// retries), the post-commit PC commits.
    pub fn contains(self, pc: CodeAddr) -> bool {
        pc >= self.start_ip && pc < self.post_commit_ip()
    }

    /// The four words the guest stores at [`RseqCs::cs_addr`], in memory
    /// order.
    pub fn to_words(self) -> [u32; RSEQ_CS_WORDS] {
        [
            self.start_ip,
            self.post_commit_offset,
            self.abort_ip,
            self.flags,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> RseqCs {
        RseqCs {
            start_ip: 10,
            post_commit_offset: 3,
            abort_ip: 20,
            flags: 0,
            cs_addr: 64,
        }
    }

    #[test]
    fn window_is_half_open() {
        let d = desc();
        assert_eq!(d.window(), SeqRange { start: 10, len: 3 });
        assert_eq!(d.post_commit_ip(), 13);
        assert!(d.contains(10), "first instruction aborts");
        assert!(d.contains(12), "the committing store aborts");
        assert!(!d.contains(13), "post-commit PC has committed");
        assert!(!d.contains(9));
    }

    #[test]
    fn words_round_trip_the_fields() {
        let d = desc();
        assert_eq!(d.to_words(), [10, 3, 20, 0]);
        assert_eq!(d.to_words().len(), RSEQ_CS_WORDS);
    }
}
