//! Basic-block discovery over a [`DecodedProgram`] — the control-flow
//! skeleton the translation tier in `ras-machine` compiles from.
//!
//! A *leader* is any instruction address where control can enter from
//! somewhere other than the preceding instruction: the program entry,
//! every static branch/jump/call target, the instruction after any
//! control transfer (the return point of a `jal`, the fall-through of a
//! branch), the instruction after a `syscall`, `halt`, or
//! `begin_atomic` (execution resumes there after the kernel handles the
//! event), and any *extra* leaders the caller supplies — the kernel
//! passes declared restartable-sequence boundaries, because rollback
//! can resume a thread at a sequence start that nothing jumps to.
//!
//! Blocks partition the whole image: every address belongs to exactly
//! one block, blocks are in address order, and a block ends at the next
//! leader or after a terminator (control transfer, `syscall`, `halt`,
//! `begin_atomic`). Register-indirect jump targets (`jr`, `jalr`)
//! cannot be enumerated statically; a runtime target that is not a
//! leader simply lands mid-block, which executors must treat as
//! untranslated (the interpreter handles it exactly).

use crate::{CodeAddr, DecodedProgram, Inst, Opcode};

/// One basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the block's first instruction (a leader).
    pub start: CodeAddr,
    /// Number of instructions in the block (always at least 1).
    pub len: u32,
}

impl BasicBlock {
    /// One past the block's last instruction.
    pub fn end(&self) -> CodeAddr {
        self.start + self.len
    }

    /// Whether `pc` is inside the block.
    pub fn contains(&self, pc: CodeAddr) -> bool {
        self.start <= pc && pc < self.end()
    }
}

/// The basic-block partition of a program, with an O(1) address-to-block
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMap {
    blocks: Vec<BasicBlock>,
    /// `index_of[pc]` is the id of the block containing `pc`.
    index_of: Box<[u32]>,
}

/// Whether `inst` always ends a basic block: control transfers plus the
/// three instructions that hand control to the kernel or change the
/// machine's atomicity state.
fn is_terminator(inst: &Inst) -> bool {
    inst.is_control()
        || matches!(
            inst.opcode(),
            Opcode::Syscall | Opcode::Halt | Opcode::BeginAtomic
        )
}

impl BlockMap {
    /// Partitions `program` into basic blocks. `extra_leaders` adds
    /// caller-known entry points (e.g. restartable-sequence starts and
    /// ends, which kernel rollback can resume at); out-of-range entries
    /// are ignored.
    pub fn new(program: &DecodedProgram, extra_leaders: &[CodeAddr]) -> BlockMap {
        let n = program.len();
        if n == 0 {
            return BlockMap {
                blocks: Vec::new(),
                index_of: Box::new([]),
            };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        if (program.entry() as usize) < n {
            leader[program.entry() as usize] = true;
        }
        for &pc in extra_leaders {
            if (pc as usize) < n {
                leader[pc as usize] = true;
            }
        }
        for (pc, inst) in program.code().iter().enumerate() {
            if let Some(target) = inst.branch_target() {
                if (target as usize) < n {
                    leader[target as usize] = true;
                }
            }
            if is_terminator(inst) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut index_of = vec![0u32; n];
        let mut start = 0usize;
        for pc in 0..n {
            index_of[pc] = blocks.len() as u32;
            let ends = is_terminator(&program.code()[pc]) || pc + 1 == n || leader[pc + 1];
            if ends {
                blocks.push(BasicBlock {
                    start: start as CodeAddr,
                    len: (pc + 1 - start) as u32,
                });
                start = pc + 1;
            }
        }
        BlockMap {
            blocks,
            index_of: index_of.into_boxed_slice(),
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the map has no blocks (empty program).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: u32) -> BasicBlock {
        self.blocks[id as usize]
    }

    /// The id of the block containing `pc`, or `None` past the end.
    #[inline(always)]
    pub fn containing(&self, pc: CodeAddr) -> Option<u32> {
        self.index_of.get(pc as usize).copied()
    }

    /// The id of the block *starting* at `pc`, or `None` if `pc` is
    /// mid-block or past the end. This is the executor's dispatch
    /// lookup: only a block entered at its leader may run translated.
    #[inline(always)]
    pub fn leader_at(&self, pc: CodeAddr) -> Option<u32> {
        let id = *self.index_of.get(pc as usize)?;
        (self.blocks[id as usize].start == pc).then_some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn decode(build: impl FnOnce(&mut Asm)) -> DecodedProgram {
        let mut asm = Asm::new();
        build(&mut asm);
        DecodedProgram::new(&asm.finish().unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = decode(|a| {
            a.li(Reg::T0, 1);
            a.addi(Reg::T0, Reg::T0, 2);
            a.halt();
        });
        let m = BlockMap::new(&p, &[]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.block(0), BasicBlock { start: 0, len: 3 });
        assert_eq!(m.leader_at(0), Some(0));
        assert_eq!(m.leader_at(1), None, "mid-block");
        assert_eq!(m.containing(2), Some(0));
        assert_eq!(m.containing(3), None);
    }

    #[test]
    fn branch_target_and_fallthrough_are_leaders() {
        let p = decode(|a| {
            a.li(Reg::T0, 3); // @0
            let top = a.bind_new(); // @1 (target)
            a.addi(Reg::T0, Reg::T0, -1); // @1
            a.bnez(Reg::T0, top); // @2 terminator
            a.halt(); // @3 fallthrough leader
        });
        let m = BlockMap::new(&p, &[]);
        let starts: Vec<_> = m.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 1, 3]);
        assert!(m.block(1).contains(2));
        assert_eq!(m.leader_at(3), Some(2));
    }

    #[test]
    fn call_return_point_is_a_leader() {
        let p = decode(|a| {
            let func = a.label();
            a.jal(func); // @0
            a.halt(); // @1 — return point
            a.bind(func);
            a.li(Reg::V0, 9); // @2
            a.jr(Reg::RA); // @3
        });
        let m = BlockMap::new(&p, &[]);
        let starts: Vec<_> = m.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 1, 2]);
        assert_eq!(m.block(2), BasicBlock { start: 2, len: 2 });
    }

    #[test]
    fn syscall_and_begin_atomic_end_blocks() {
        let p = decode(|a| {
            a.li(Reg::V0, 1); // @0
            a.syscall(); // @1
            a.begin_atomic(); // @2
            a.nop(); // @3
            a.halt(); // @4
        });
        let m = BlockMap::new(&p, &[]);
        let starts: Vec<_> = m.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 2, 3]);
    }

    #[test]
    fn extra_leaders_split_blocks() {
        let p = decode(|a| {
            a.nop(); // @0
            a.nop(); // @1 — sequence start the kernel can resume at
            a.nop(); // @2
            a.halt(); // @3
        });
        let plain = BlockMap::new(&p, &[]);
        assert_eq!(plain.len(), 1);
        let split = BlockMap::new(&p, &[1, 99]);
        let starts: Vec<_> = split.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 1], "out-of-range extra leader ignored");
        assert_eq!(split.leader_at(1), Some(1));
    }

    #[test]
    fn blocks_partition_the_image() {
        let p = decode(|a| {
            let func = a.label();
            a.li(Reg::T0, 2);
            let top = a.bind_new();
            a.jal(func);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.halt();
            a.bind(func);
            a.jr(Reg::RA);
        });
        let m = BlockMap::new(&p, &[]);
        let mut covered = 0u32;
        for (id, b) in m.blocks().iter().enumerate() {
            assert_eq!(b.start, covered, "blocks are contiguous");
            assert!(b.len >= 1);
            for pc in b.start..b.end() {
                assert_eq!(m.containing(pc), Some(id as u32));
            }
            covered = b.end();
        }
        assert_eq!(covered as usize, p.len());
    }

    #[test]
    fn empty_program_has_no_blocks() {
        let p = DecodedProgram::new(&Asm::new().finish().unwrap());
        let m = BlockMap::new(&p, &[]);
        assert!(m.is_empty());
        assert_eq!(m.leader_at(0), None);
        assert_eq!(m.containing(0), None);
    }
}
