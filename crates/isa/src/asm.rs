use std::collections::BTreeMap;

use crate::{AluOp, AsmError, CodeAddr, Cond, Inst, Program, Reg, RseqCs, SeqRange};

/// A forward- or backward-referenceable code label.
///
/// Create with [`Asm::label`], place with [`Asm::bind`], and reference from
/// branch/jump emitters. Labels are resolved when [`Asm::finish`] is called.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

#[derive(Debug, Clone, Copy)]
enum Fixup {
    BranchTarget,
    JumpTarget,
    LiAddr,
}

/// A single-pass assembler with labels and named symbols.
///
/// Every emitter returns the [`CodeAddr`] of the instruction it emitted,
/// which the restartable-atomic-sequence machinery uses to record sequence
/// ranges.
///
/// # Example
///
/// ```
/// use ras_isa::{Asm, Reg};
///
/// let mut asm = Asm::new();
/// let top = asm.label();
/// asm.li(Reg::T0, 10);
/// asm.bind(top);
/// asm.addi(Reg::T0, Reg::T0, -1);
/// asm.bnez(Reg::T0, top);
/// asm.halt();
/// let program = asm.finish().unwrap();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<Inst>,
    labels: Vec<Option<CodeAddr>>,
    fixups: Vec<(CodeAddr, Label, Fixup)>,
    symbols: BTreeMap<String, CodeAddr>,
    entry: CodeAddr,
    seqs: Vec<SeqRange>,
    rseqs: Vec<RseqCs>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> CodeAddr {
        self.code.len() as CodeAddr
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound; rebinding is always a bug in
    /// the code generator.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label #{} bound twice", label.0);
        *slot = Some(here);
    }

    /// Allocates a label already bound to the current address.
    pub fn bind_new(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Records `name` as a symbol for the current address (e.g. a function
    /// entry point). Returns the address.
    ///
    /// # Panics
    ///
    /// Panics if the name was already bound.
    pub fn bind_symbol(&mut self, name: &str) -> CodeAddr {
        let here = self.here();
        let prev = self.symbols.insert(name.to_owned(), here);
        assert!(prev.is_none(), "symbol `{name}` bound twice");
        here
    }

    /// Marks the current address as the program entry point (defaults to 0).
    pub fn set_entry_here(&mut self) {
        self.entry = self.here();
    }

    /// Declares `range` as a restartable atomic sequence. The finished
    /// [`Program`] exposes all declarations via [`Program::seq_ranges`],
    /// which is what `ras-analyze`'s restartability verifier walks.
    ///
    /// Every sequence emitter declares its own range, so user code only
    /// calls this when hand-rolling a sequence.
    pub fn declare_seq(&mut self, range: SeqRange) {
        self.seqs.push(range);
    }

    /// Declares `desc` as an rseq critical-section descriptor. The
    /// finished [`Program`] exposes all declarations via
    /// [`Program::rseq_descs`], which is what `ras-analyze`'s
    /// abort-safety pass verifies. Like [`Asm::declare_seq`], this is
    /// analysis metadata — the kernel reads only the descriptor's data
    /// words.
    pub fn declare_rseq(&mut self, desc: RseqCs) {
        self.rseqs.push(desc);
    }

    fn push(&mut self, inst: Inst) -> CodeAddr {
        let at = self.here();
        self.code.push(inst);
        at
    }

    /// Emits a raw instruction. Prefer the specific emitters below.
    pub fn emit(&mut self, inst: Inst) -> CodeAddr {
        self.push(inst)
    }

    // --- ALU -------------------------------------------------------------

    /// `li rd, imm`
    pub fn li(&mut self, rd: Reg, imm: i32) -> CodeAddr {
        self.push(Inst::Li { rd, imm })
    }

    /// `li rd, <code address of label>` — the label's address is patched
    /// in when the program is finished. Useful for passing function entry
    /// points to `spawn`.
    pub fn li_label(&mut self, rd: Reg, label: Label) -> CodeAddr {
        let at = self.push(Inst::Li { rd, imm: 0 });
        self.fixups.push((at, label, Fixup::LiAddr));
        at
    }

    /// `move rd, rs` (encoded as `or rd, rs, $zero`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> CodeAddr {
        self.push(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs,
            rt: Reg::ZERO,
        })
    }

    /// Register-register ALU helper.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.push(Inst::Alu { op, rd, rs, rt })
    }

    /// Register-immediate ALU helper.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.push(Inst::AluI { op, rd, rs, imm })
    }

    /// `add rd, rs, rt`
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Add, rd, rs, rt)
    }

    /// `sub rd, rs, rt`
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Sub, rd, rs, rt)
    }

    /// `addi rd, rs, imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::Add, rd, rs, imm)
    }

    /// `and rd, rs, rt`
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::And, rd, rs, rt)
    }

    /// `andi rd, rs, imm`
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::And, rd, rs, imm)
    }

    /// `or rd, rs, rt`
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Or, rd, rs, rt)
    }

    /// `ori rd, rs, imm`
    pub fn ori(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::Or, rd, rs, imm)
    }

    /// `xor rd, rs, rt`
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Xor, rd, rs, rt)
    }

    /// `sll rd, rs, imm`
    pub fn slli(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::Sll, rd, rs, imm)
    }

    /// `srl rd, rs, imm`
    pub fn srli(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::Srl, rd, rs, imm)
    }

    /// `slt rd, rs, rt`
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Slt, rd, rs, rt)
    }

    /// `slti rd, rs, imm`
    pub fn slti(&mut self, rd: Reg, rs: Reg, imm: i32) -> CodeAddr {
        self.alui(AluOp::Slt, rd, rs, imm)
    }

    /// `mul rd, rs, rt`
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> CodeAddr {
        self.alu(AluOp::Mul, rd, rs, rt)
    }

    // --- memory ----------------------------------------------------------

    /// `lw rd, off(base)`
    pub fn lw(&mut self, rd: Reg, base: Reg, off: i32) -> CodeAddr {
        self.push(Inst::Lw { rd, base, off })
    }

    /// `sw rs, off(base)`
    pub fn sw(&mut self, rs: Reg, base: Reg, off: i32) -> CodeAddr {
        self.push(Inst::Sw { rs, base, off })
    }

    // --- control ---------------------------------------------------------

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        let at = self.push(Inst::Branch {
            cond,
            rs,
            rt,
            target: 0,
        });
        self.fixups.push((at, label, Fixup::BranchTarget));
        at
    }

    /// `beq rs, rt, label`
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Eq, rs, rt, label)
    }

    /// `bne rs, rt, label`
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Ne, rs, rt, label)
    }

    /// `beqz rs, label`
    pub fn beqz(&mut self, rs: Reg, label: Label) -> CodeAddr {
        self.beq(rs, Reg::ZERO, label)
    }

    /// `bnez rs, label`
    pub fn bnez(&mut self, rs: Reg, label: Label) -> CodeAddr {
        self.bne(rs, Reg::ZERO, label)
    }

    /// `blt rs, rt, label` (signed)
    pub fn blt(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Lt, rs, rt, label)
    }

    /// `bge rs, rt, label` (signed)
    pub fn bge(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Ge, rs, rt, label)
    }

    /// `bltu rs, rt, label`
    pub fn bltu(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Ltu, rs, rt, label)
    }

    /// `bgeu rs, rt, label`
    pub fn bgeu(&mut self, rs: Reg, rt: Reg, label: Label) -> CodeAddr {
        self.branch(Cond::Geu, rs, rt, label)
    }

    /// `j label`
    pub fn j(&mut self, label: Label) -> CodeAddr {
        let at = self.push(Inst::J { target: 0 });
        self.fixups.push((at, label, Fixup::JumpTarget));
        at
    }

    /// `jal label`
    pub fn jal(&mut self, label: Label) -> CodeAddr {
        let at = self.push(Inst::Jal { target: 0 });
        self.fixups.push((at, label, Fixup::JumpTarget));
        at
    }

    /// `jal` to an already-known absolute address (e.g. a previously
    /// assembled function).
    pub fn jal_to(&mut self, target: CodeAddr) -> CodeAddr {
        self.push(Inst::Jal { target })
    }

    /// `j` to an already-known absolute address.
    pub fn j_to(&mut self, target: CodeAddr) -> CodeAddr {
        self.push(Inst::J { target })
    }

    /// `jr rs`
    pub fn jr(&mut self, rs: Reg) -> CodeAddr {
        self.push(Inst::Jr { rs })
    }

    /// `jalr rd, rs`
    pub fn jalr(&mut self, rd: Reg, rs: Reg) -> CodeAddr {
        self.push(Inst::Jalr { rd, rs })
    }

    // --- special ---------------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> CodeAddr {
        self.push(Inst::Nop)
    }

    /// The designated-sequence landmark no-op (§3.2 of the paper).
    pub fn landmark(&mut self) -> CodeAddr {
        self.push(Inst::Landmark)
    }

    /// `syscall`
    pub fn syscall(&mut self) -> CodeAddr {
        self.push(Inst::Syscall)
    }

    /// Hardware interlocked Test-And-Set.
    pub fn tas(&mut self, rd: Reg, base: Reg) -> CodeAddr {
        self.push(Inst::Tas { rd, base })
    }

    /// i860-style begin-atomic (sets the restart bit).
    pub fn begin_atomic(&mut self) -> CodeAddr {
        self.push(Inst::BeginAtomic)
    }

    /// `halt`
    pub fn halt(&mut self) -> CodeAddr {
        self.push(Inst::Halt)
    }

    // --- finishing -------------------------------------------------------

    /// Resolves all labels and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, and [`AsmError::ProgramTooLarge`] if the program cannot be
    /// addressed by a `u32` instruction index.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if self.code.len() > u32::MAX as usize / 2 {
            return Err(AsmError::ProgramTooLarge {
                len: self.code.len(),
            });
        }
        for (at, label, fixup) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel {
                label: label.0,
                first_use: at,
            })?;
            let inst = &mut self.code[at as usize];
            match (fixup, &mut *inst) {
                (Fixup::BranchTarget, Inst::Branch { target: t, .. }) => *t = target,
                (Fixup::JumpTarget, Inst::J { target: t }) => *t = target,
                (Fixup::JumpTarget, Inst::Jal { target: t }) => *t = target,
                (Fixup::LiAddr, Inst::Li { imm, .. }) => *imm = target as i32,
                _ => unreachable!("fixup kind mismatch at @{at}"),
            }
        }
        Ok(Program::new(
            self.code,
            self.symbols,
            self.entry,
            self.seqs,
            self.rseqs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        let fwd = asm.label();
        asm.j(fwd); // @0 -> 3
        let back = asm.bind_new(); // @1
        asm.nop(); // @1
        asm.j(back); // @2 -> 1
        asm.bind(fwd);
        asm.halt(); // @3
        let p = asm.finish().unwrap();
        assert_eq!(p.fetch(0), Some(Inst::J { target: 3 }));
        assert_eq!(p.fetch(2), Some(Inst::J { target: 1 }));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.j(l);
        assert!(matches!(
            asm.finish(),
            Err(AsmError::UnboundLabel {
                label: 0,
                first_use: 0
            })
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    #[should_panic(expected = "symbol `f` bound twice")]
    fn duplicate_symbol_panics() {
        let mut asm = Asm::new();
        asm.bind_symbol("f");
        asm.nop();
        asm.bind_symbol("f");
    }

    #[test]
    fn emitters_return_addresses() {
        let mut asm = Asm::new();
        assert_eq!(asm.li(Reg::T0, 1), 0);
        assert_eq!(asm.mv(Reg::T1, Reg::T0), 1);
        assert_eq!(asm.lw(Reg::T2, Reg::SP, 4), 2);
        assert_eq!(asm.here(), 3);
    }

    #[test]
    fn mv_encodes_as_or_with_zero() {
        let mut asm = Asm::new();
        asm.mv(Reg::T1, Reg::T0);
        let p = asm.finish().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Alu {
                op: AluOp::Or,
                rd: Reg::T1,
                rs: Reg::T0,
                rt: Reg::ZERO
            })
        );
    }

    #[test]
    fn entry_point_is_recorded() {
        let mut asm = Asm::new();
        asm.nop();
        asm.set_entry_here();
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn branch_helpers_encode_conditions() {
        let mut asm = Asm::new();
        let l = asm.bind_new();
        asm.beqz(Reg::V0, l);
        asm.bnez(Reg::V0, l);
        asm.blt(Reg::T0, Reg::T1, l);
        asm.bgeu(Reg::T0, Reg::T1, l);
        let p = asm.finish().unwrap();
        let conds: Vec<Cond> = (0..4)
            .map(|i| match p.fetch(i).unwrap() {
                Inst::Branch { cond, .. } => cond,
                other => panic!("expected branch, got {other}"),
            })
            .collect();
        assert_eq!(conds, vec![Cond::Eq, Cond::Ne, Cond::Lt, Cond::Geu]);
    }
}
