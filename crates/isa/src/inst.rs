use std::fmt;

use crate::{CodeAddr, Reg};

/// An ALU operation, used by both register-register and register-immediate
/// instruction forms.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (by the low 5 bits of the right operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-less-than, signed: destination gets 1 or 0.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// Wrapping multiplication (low 32 bits).
    Mul,
}

impl AluOp {
    /// Mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
        }
    }

    /// Applies the operation to two 32-bit values.
    ///
    /// Shifts use the low five bits of `b`; arithmetic wraps, matching the
    /// machine's semantics so tests can use this as an oracle.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// A branch condition comparing two registers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Mnemonic, e.g. `bne`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }

    /// The opposite condition: `c.negated().holds(a, b) == !c.holds(a, b)`
    /// for every operand pair. The condition set is closed under
    /// negation, which lets a trace compiler store a branch's side-exit
    /// condition directly instead of a negate flag.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Evaluates the condition on two register values.
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// One machine instruction.
///
/// Branch and jump targets are absolute code addresses (instruction
/// indices); the assembler resolves labels to these before a [`crate::Program`]
/// is produced.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Load a 32-bit immediate into `rd` (pseudo-instruction covering
    /// `li`/`lui`+`ori`; costs one cycle in the default model).
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value (stored sign-extended semantics via `as u32`).
        imm: i32,
    },
    /// Register-register ALU operation: `rd <- rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// Register-immediate ALU operation: `rd <- rs op imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Immediate right operand.
        imm: i32,
    },
    /// Load word: `rd <- mem[rs + off]` (byte address, must be 4-aligned).
    Lw {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Store word: `mem[base + off] <- rs`.
    Sw {
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Conditional branch to an absolute code address.
    Branch {
        /// Condition to evaluate.
        cond: Cond,
        /// Left comparand.
        rs: Reg,
        /// Right comparand.
        rt: Reg,
        /// Absolute target instruction index.
        target: CodeAddr,
    },
    /// Unconditional jump.
    J {
        /// Absolute target instruction index.
        target: CodeAddr,
    },
    /// Jump-and-link: `ra <- pc + 1; pc <- target`.
    Jal {
        /// Absolute target instruction index.
        target: CodeAddr,
    },
    /// Jump to register.
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Jump to register and link: `rd <- pc + 1; pc <- rs`.
    Jalr {
        /// Destination for the return address.
        rd: Reg,
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Ordinary no-op.
    Nop,
    /// The Taos landmark no-op: a non-destructive register move the compiler
    /// never emits outside a designated restartable atomic sequence (§3.2
    /// of the paper). Semantically identical to [`Inst::Nop`].
    Landmark,
    /// System call; the call number is taken from `$v0` and arguments from
    /// `$a0..$a3` (see [`crate::abi`]).
    Syscall,
    /// Memory-interlocked Test-And-Set: atomically `rd <- mem[base]`,
    /// `mem[base] <- 1`. Only available on CPU profiles with hardware
    /// atomic support; executing it elsewhere faults.
    Tas {
        /// Destination for the old value.
        rd: Reg,
        /// Register holding the byte address of the lock word.
        base: Reg,
    },
    /// Begin an i860-style hardware restartable sequence (§7 of the paper):
    /// sets the processor-status atomic bit, which is cleared by the next
    /// store or after 32 cycles. While set, a suspension rolls the thread
    /// back to this instruction. Only available on profiles with
    /// `has_restart_bit`.
    BeginAtomic,
    /// Halt the machine. Reserved for the idle/kernel path; user threads
    /// exit via [`crate::abi::SYS_EXIT`].
    Halt,
}

/// The opcode class of an instruction, used as the stage-1 index of the
/// Taos designated-sequence check (§3.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Opcode {
    Li,
    Alu,
    AluI,
    Lw,
    Sw,
    Branch,
    J,
    Jal,
    Jr,
    Jalr,
    Nop,
    Landmark,
    Syscall,
    Tas,
    BeginAtomic,
    Halt,
}

impl Opcode {
    /// Total number of opcode classes; handy for table sizing.
    pub const COUNT: usize = 16;

    /// Every opcode class, in dense-index order.
    pub const ALL: [Opcode; Opcode::COUNT] = [
        Opcode::Li,
        Opcode::Alu,
        Opcode::AluI,
        Opcode::Lw,
        Opcode::Sw,
        Opcode::Branch,
        Opcode::J,
        Opcode::Jal,
        Opcode::Jr,
        Opcode::Jalr,
        Opcode::Nop,
        Opcode::Landmark,
        Opcode::Syscall,
        Opcode::Tas,
        Opcode::BeginAtomic,
        Opcode::Halt,
    ];

    /// Dense index of this opcode, `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase mnemonic, used as a key in machine-readable
    /// reports (benchmark JSON, mix tables).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Li => "li",
            Opcode::Alu => "alu",
            Opcode::AluI => "alui",
            Opcode::Lw => "lw",
            Opcode::Sw => "sw",
            Opcode::Branch => "branch",
            Opcode::J => "j",
            Opcode::Jal => "jal",
            Opcode::Jr => "jr",
            Opcode::Jalr => "jalr",
            Opcode::Nop => "nop",
            Opcode::Landmark => "landmark",
            Opcode::Syscall => "syscall",
            Opcode::Tas => "tas",
            Opcode::BeginAtomic => "begin_atomic",
            Opcode::Halt => "halt",
        }
    }
}

impl Inst {
    /// The instruction's opcode class.
    pub fn opcode(&self) -> Opcode {
        match self {
            Inst::Li { .. } => Opcode::Li,
            Inst::Alu { .. } => Opcode::Alu,
            Inst::AluI { .. } => Opcode::AluI,
            Inst::Lw { .. } => Opcode::Lw,
            Inst::Sw { .. } => Opcode::Sw,
            Inst::Branch { .. } => Opcode::Branch,
            Inst::J { .. } => Opcode::J,
            Inst::Jal { .. } => Opcode::Jal,
            Inst::Jr { .. } => Opcode::Jr,
            Inst::Jalr { .. } => Opcode::Jalr,
            Inst::Nop => Opcode::Nop,
            Inst::Landmark => Opcode::Landmark,
            Inst::Syscall => Opcode::Syscall,
            Inst::Tas { .. } => Opcode::Tas,
            Inst::BeginAtomic => Opcode::BeginAtomic,
            Inst::Halt => Opcode::Halt,
        }
    }

    /// Whether the instruction can transfer control (branch, jump, call).
    pub fn is_control(&self) -> bool {
        matches!(
            self.opcode(),
            Opcode::Branch | Opcode::J | Opcode::Jal | Opcode::Jr | Opcode::Jalr
        )
    }

    /// Whether the instruction writes to data memory.
    pub fn is_store(&self) -> bool {
        matches!(self.opcode(), Opcode::Sw | Opcode::Tas)
    }

    /// The register this instruction writes, if any.
    ///
    /// Writes to [`Reg::ZERO`] are reported as written even though the
    /// hardware discards them; dataflow clients that care should filter.
    /// `Syscall` is reported as writing `$v0` (every call in [`crate::abi`]
    /// returns its result there).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Li { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Lw { rd, .. }
            | Inst::Tas { rd, .. }
            | Inst::Jalr { rd, .. } => Some(rd),
            Inst::Jal { .. } => Some(Reg::RA),
            Inst::Syscall => Some(Reg::V0),
            Inst::Sw { .. }
            | Inst::Branch { .. }
            | Inst::J { .. }
            | Inst::Jr { .. }
            | Inst::Nop
            | Inst::Landmark
            | Inst::BeginAtomic
            | Inst::Halt => None,
        }
    }

    /// The registers this instruction reads, in operand order.
    ///
    /// `Syscall` reads `$v0` (call number) and `$a0..$a3`; individual calls
    /// use fewer arguments, so this is the conservative superset a static
    /// analysis needs.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Inst::Li { .. }
            | Inst::J { .. }
            | Inst::Jal { .. }
            | Inst::Nop
            | Inst::Landmark
            | Inst::BeginAtomic
            | Inst::Halt => Vec::new(),
            Inst::Alu { rs, rt, .. } => vec![rs, rt],
            Inst::AluI { rs, .. } => vec![rs],
            Inst::Lw { base, .. } => vec![base],
            Inst::Sw { rs, base, .. } => vec![rs, base],
            Inst::Branch { rs, rt, .. } => vec![rs, rt],
            Inst::Jr { rs } | Inst::Jalr { rs, .. } => vec![rs],
            Inst::Syscall => vec![Reg::V0, Reg::A0, Reg::A1, Reg::A2, Reg::A3],
            Inst::Tas { base, .. } => vec![base],
        }
    }

    /// The static control-transfer target, if the instruction has one
    /// (`Branch`, `J`, `Jal`). Register-indirect jumps return `None`.
    pub fn branch_target(&self) -> Option<CodeAddr> {
        match *self {
            Inst::Branch { target, .. } | Inst::J { target } | Inst::Jal { target } => Some(target),
            _ => None,
        }
    }

    /// Whether execution can continue at the next instruction. False for
    /// the unconditional transfers (`j`, `jr`) and `halt`. Calls (`jal`,
    /// `jalr`) report true: control returns to the following instruction
    /// when the callee returns, which is the successor a control-flow
    /// analysis wants.
    pub fn falls_through(&self) -> bool {
        !matches!(self.opcode(), Opcode::J | Opcode::Jr | Opcode::Halt)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li    {rd}, {imm}"),
            Inst::Alu { op, rd, rs, rt } => {
                write!(f, "{:<5} {rd}, {rs}, {rt}", op.mnemonic())
            }
            Inst::AluI { op, rd, rs, imm } => {
                write!(f, "{:<5} {rd}, {rs}, {imm}", format!("{}i", op.mnemonic()))
            }
            Inst::Lw { rd, base, off } => write!(f, "lw    {rd}, {off}({base})"),
            Inst::Sw { rs, base, off } => write!(f, "sw    {rs}, {off}({base})"),
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{:<5} {rs}, {rt}, @{target}", cond.mnemonic()),
            Inst::J { target } => write!(f, "j     @{target}"),
            Inst::Jal { target } => write!(f, "jal   @{target}"),
            Inst::Jr { rs } => write!(f, "jr    {rs}"),
            Inst::Jalr { rd, rs } => write!(f, "jalr  {rd}, {rs}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Landmark => write!(f, "landmark"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Tas { rd, base } => write!(f, "tas   {rd}, ({base})"),
            Inst::BeginAtomic => write!(f, "begin_atomic"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_apply_matches_expected() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount is masked");
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Slt.apply(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u32::MAX, 0), 0);
        assert_eq!(AluOp::Mul.apply(0x1_0001, 0x1_0001), 0x2_0001);
    }

    #[test]
    fn cond_holds() {
        assert!(Cond::Eq.holds(3, 3));
        assert!(Cond::Ne.holds(3, 4));
        assert!(Cond::Lt.holds(u32::MAX, 0));
        assert!(!Cond::Ltu.holds(u32::MAX, 0));
        assert!(Cond::Ge.holds(0, u32::MAX));
        assert!(Cond::Geu.holds(u32::MAX, 0));
    }

    #[test]
    fn opcode_classification() {
        let i = Inst::Lw {
            rd: Reg::V0,
            base: Reg::A0,
            off: 0,
        };
        assert_eq!(i.opcode(), Opcode::Lw);
        assert!(!i.is_control());
        assert!(!i.is_store());
        assert!(Inst::Sw {
            rs: Reg::T0,
            base: Reg::A0,
            off: 0
        }
        .is_store());
        assert!(Inst::J { target: 3 }.is_control());
        assert_eq!(Inst::Landmark.opcode(), Opcode::Landmark);
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let a = Inst::Nop.to_string();
        let b = Inst::Landmark.to_string();
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b, "landmark must be visibly distinct from nop");
    }

    #[test]
    fn opcode_indices_are_dense() {
        let ops = [
            Opcode::Li,
            Opcode::Alu,
            Opcode::AluI,
            Opcode::Lw,
            Opcode::Sw,
            Opcode::Branch,
            Opcode::J,
            Opcode::Jal,
            Opcode::Jr,
            Opcode::Jalr,
            Opcode::Nop,
            Opcode::Landmark,
            Opcode::Syscall,
            Opcode::Tas,
            Opcode::BeginAtomic,
            Opcode::Halt,
        ];
        assert_eq!(ops.len(), Opcode::COUNT);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
