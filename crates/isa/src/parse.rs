//! A text-format assembler: parses the same syntax the disassembler
//! prints, so listings round-trip. Useful for writing guest programs as
//! `.s` files and for tests that want readable fixtures.
//!
//! Syntax, one instruction or label per line:
//!
//! ```text
//! # comment                      ; also "//"
//! .entry main                    ; optional entry point (label or @addr)
//! .rseq win 3 abort 64           ; rseq descriptor: window start (label
//!                                ; or @addr), length in instructions,
//!                                ; abort handler (label or @addr), and
//!                                ; the descriptor's data address; an
//!                                ; optional trailing `norestart` sets
//!                                ; RSEQ_CS_NO_RESTART_ON_PREEMPT
//! main:                          ; label / symbol
//!   li    $t0, 10
//! loop:
//!   addi  $t0, $t0, -1
//!   bne   $t0, $zero, loop       ; branch to a label…
//!   beq   $t0, $zero, @7         ; …or to an absolute address
//!   lw    $v0, 0($a0)
//!   sw    $v0, -4($sp)
//!   jal   loop
//!   jr    $ra
//!   landmark
//!   halt
//! ```
//!
//! The optional `@N` address prefix the disassembler prints before each
//! instruction is accepted and ignored.

use std::fmt;

use crate::{
    AluOp, Asm, CodeAddr, Cond, Label, Program, Reg, RseqCs, RSEQ_CS_NO_RESTART_ON_PREEMPT,
};

/// Error parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

struct Parser {
    asm: Asm,
    labels: std::collections::HashMap<String, Label>,
    entry: Option<String>,
}

impl Parser {
    fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
        ParseAsmError {
            line,
            message: message.into(),
        }
    }

    fn label_for(&mut self, name: &str) -> Label {
        if let Some(l) = self.labels.get(name) {
            *l
        } else {
            let l = self.asm.label();
            self.labels.insert(name.to_owned(), l);
            l
        }
    }

    fn reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
        tok.trim_end_matches(',')
            .parse::<Reg>()
            .map_err(|e| Self::err(line, e.to_string()))
    }

    fn imm(tok: &str, line: usize) -> Result<i32, ParseAsmError> {
        let t = tok.trim_end_matches(',');
        let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            u32::from_str_radix(hex, 16).map(|v| v as i32).ok()
        } else if let Some(hex) = t.strip_prefix("-0x") {
            u32::from_str_radix(hex, 16)
                .map(|v| (v as i32).wrapping_neg())
                .ok()
        } else {
            t.parse::<i32>().ok()
        };
        parsed.ok_or_else(|| Self::err(line, format!("bad immediate `{t}`")))
    }

    /// Parses `off(base)` into (offset, base register).
    fn mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), ParseAsmError> {
        let open = tok
            .find('(')
            .ok_or_else(|| Self::err(line, format!("expected off(base), got `{tok}`")))?;
        let close = tok
            .find(')')
            .ok_or_else(|| Self::err(line, format!("missing `)` in `{tok}`")))?;
        let off = if open == 0 {
            0
        } else {
            Self::imm(&tok[..open], line)?
        };
        let base = Self::reg(&tok[open + 1..close], line)?;
        Ok((off, base))
    }

    /// A jump/branch target: `@N` absolute or a label name.
    fn target(&mut self, tok: &str, line: usize) -> Result<Target, ParseAsmError> {
        let t = tok.trim_end_matches(',');
        if let Some(addr) = t.strip_prefix('@') {
            addr.parse::<u32>()
                .map(Target::Absolute)
                .map_err(|_| Self::err(line, format!("bad address `{t}`")))
        } else if t
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            Ok(Target::Named(self.label_for(t)))
        } else {
            Err(Self::err(line, format!("bad target `{t}`")))
        }
    }
}

enum Target {
    Absolute(u32),
    Named(Label),
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on any syntax
/// problem, and for labels referenced but never defined.
pub fn parse_asm(text: &str) -> Result<Program, ParseAsmError> {
    let mut p = Parser {
        asm: Asm::new(),
        labels: std::collections::HashMap::new(),
        entry: None,
    };
    let mut bound: std::collections::HashSet<String> = std::collections::HashSet::new();
    // `.rseq` directives, resolved against symbols once assembly is done.
    struct RseqSpec {
        start: String,
        len: u32,
        abort: String,
        cs_addr: u32,
        flags: u32,
        line: usize,
    }
    let mut rseqs: Vec<RseqSpec> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(cut) = line.find('#') {
            line = &line[..cut];
        }
        if let Some(cut) = line.find("//") {
            line = &line[..cut];
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            p.entry = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix(".rseq") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let flags = match toks.len() {
                4 => 0,
                5 if toks[4] == "norestart" => RSEQ_CS_NO_RESTART_ON_PREEMPT,
                _ => {
                    return Err(Parser::err(
                        line_no,
                        ".rseq wants START LEN ABORT CS_ADDR [norestart]",
                    ))
                }
            };
            let len = toks[1]
                .parse::<u32>()
                .map_err(|_| Parser::err(line_no, format!("bad .rseq length `{}`", toks[1])))?;
            let cs_addr = Parser::imm(toks[3], line_no)? as u32;
            rseqs.push(RseqSpec {
                start: toks[0].to_owned(),
                len,
                abort: toks[2].to_owned(),
                cs_addr,
                flags,
                line: line_no,
            });
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if !bound.insert(name.to_owned()) {
                return Err(Parser::err(
                    line_no,
                    format!("label `{name}` defined twice"),
                ));
            }
            let l = p.label_for(name);
            p.asm.bind(l);
            p.asm.bind_symbol(name);
            continue;
        }
        // Strip a leading `@N` address annotation from disassembly output.
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens[0].starts_with('@') && tokens.len() > 1 {
            tokens.remove(0);
        }
        let mnemonic = tokens[0];
        let ops = &tokens[1..];
        let need = |n: usize| -> Result<(), ParseAsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(Parser::err(
                    line_no,
                    format!("`{mnemonic}` wants {n} operands, got {}", ops.len()),
                ))
            }
        };
        match mnemonic {
            "li" => {
                need(2)?;
                let rd = Parser::reg(ops[0], line_no)?;
                // `li rd, label` loads a code address.
                if ops[1]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                {
                    match p.target(ops[1], line_no)? {
                        Target::Named(l) => {
                            p.asm.li_label(rd, l);
                        }
                        Target::Absolute(a) => {
                            p.asm.li(rd, a as i32);
                        }
                    }
                } else {
                    let imm = Parser::imm(ops[1], line_no)?;
                    p.asm.li(rd, imm);
                }
            }
            "lw" => {
                need(2)?;
                let rd = Parser::reg(ops[0], line_no)?;
                let (off, base) = Parser::mem_operand(ops[1], line_no)?;
                p.asm.lw(rd, base, off);
            }
            "sw" => {
                need(2)?;
                let rs = Parser::reg(ops[0], line_no)?;
                let (off, base) = Parser::mem_operand(ops[1], line_no)?;
                p.asm.sw(rs, base, off);
            }
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" => {
                need(3)?;
                let op = alu_by_name(mnemonic).expect("matched above");
                let rd = Parser::reg(ops[0], line_no)?;
                let rs = Parser::reg(ops[1], line_no)?;
                let rt = Parser::reg(ops[2], line_no)?;
                p.asm.alu(op, rd, rs, rt);
            }
            "addi" | "subi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti"
            | "sltui" | "muli" => {
                need(3)?;
                let op = alu_by_name(&mnemonic[..mnemonic.len() - 1]).expect("matched above");
                let rd = Parser::reg(ops[0], line_no)?;
                let rs = Parser::reg(ops[1], line_no)?;
                let imm = Parser::imm(ops[2], line_no)?;
                p.asm.alui(op, rd, rs, imm);
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let cond = match mnemonic {
                    "beq" => Cond::Eq,
                    "bne" => Cond::Ne,
                    "blt" => Cond::Lt,
                    "bge" => Cond::Ge,
                    "bltu" => Cond::Ltu,
                    _ => Cond::Geu,
                };
                let rs = Parser::reg(ops[0], line_no)?;
                let rt = Parser::reg(ops[1], line_no)?;
                match p.target(ops[2], line_no)? {
                    Target::Named(l) => {
                        p.asm.branch(cond, rs, rt, l);
                    }
                    Target::Absolute(a) => {
                        p.asm.emit(crate::Inst::Branch {
                            cond,
                            rs,
                            rt,
                            target: a,
                        });
                    }
                }
            }
            "j" | "jal" => {
                need(1)?;
                match p.target(ops[0], line_no)? {
                    Target::Named(l) => {
                        if mnemonic == "j" {
                            p.asm.j(l);
                        } else {
                            p.asm.jal(l);
                        }
                    }
                    Target::Absolute(a) => {
                        if mnemonic == "j" {
                            p.asm.j_to(a);
                        } else {
                            p.asm.jal_to(a);
                        }
                    }
                }
            }
            "jr" => {
                need(1)?;
                let rs = Parser::reg(ops[0], line_no)?;
                p.asm.jr(rs);
            }
            "jalr" => {
                need(2)?;
                let rd = Parser::reg(ops[0], line_no)?;
                let rs = Parser::reg(ops[1], line_no)?;
                p.asm.jalr(rd, rs);
            }
            "tas" => {
                need(2)?;
                let rd = Parser::reg(ops[0], line_no)?;
                let (off, base) = Parser::mem_operand(ops[1], line_no)
                    .or_else(|_| Parser::reg(ops[1], line_no).map(|r| (0, r)))?;
                if off != 0 {
                    return Err(Parser::err(line_no, "tas takes (base) with no offset"));
                }
                p.asm.tas(rd, base);
            }
            "nop" => {
                need(0)?;
                p.asm.nop();
            }
            "landmark" => {
                need(0)?;
                p.asm.landmark();
            }
            "syscall" => {
                need(0)?;
                p.asm.syscall();
            }
            "begin_atomic" => {
                need(0)?;
                p.asm.begin_atomic();
            }
            "halt" => {
                need(0)?;
                p.asm.halt();
            }
            other => {
                return Err(Parser::err(line_no, format!("unknown mnemonic `{other}`")));
            }
        }
    }
    let entry = p.entry.clone();
    let asm = p.asm;
    let program = asm
        .finish()
        .map_err(|e| Parser::err(0, format!("unresolved reference: {e}")))?;
    let mut program = match entry {
        None => program,
        Some(name) => {
            let addr = if let Some(at) = name.strip_prefix('@') {
                at.parse::<u32>()
                    .map_err(|_| Parser::err(0, format!("bad .entry `{name}`")))?
            } else {
                program
                    .symbol(&name)
                    .ok_or_else(|| Parser::err(0, format!(".entry label `{name}` not found")))?
            };
            program.with_entry(addr)
        }
    };
    for spec in rseqs {
        let resolve = |what: &str, name: &str| -> Result<CodeAddr, ParseAsmError> {
            if let Some(at) = name.strip_prefix('@') {
                at.parse::<u32>()
                    .map_err(|_| Parser::err(spec.line, format!("bad .rseq {what} `{name}`")))
            } else {
                program.symbol(name).ok_or_else(|| {
                    Parser::err(spec.line, format!(".rseq {what} label `{name}` not found"))
                })
            }
        };
        let desc = RseqCs {
            start_ip: resolve("start", &spec.start)?,
            post_commit_offset: spec.len,
            abort_ip: resolve("abort", &spec.abort)?,
            flags: spec.flags,
            cs_addr: spec.cs_addr,
        };
        program.declare_rseq(desc);
    }
    Ok(program)
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "mul" => AluOp::Mul,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Inst, Opcode};

    #[test]
    fn parses_a_full_program() {
        let text = r#"
            # countdown with a landmark
            .entry main
            main:
                li    $t0, 3
            loop:
                addi  $t0, $t0, -1
                landmark
                bne   $t0, $zero, loop
                lw    $v0, 8($sp)
                sw    $v0, ($a0)
                jal   main
                jr    $ra
                halt
        "#;
        let p = parse_asm(text).unwrap();
        assert_eq!(p.symbol("main"), Some(0));
        assert_eq!(p.symbol("loop"), Some(1));
        assert_eq!(p.entry(), 0);
        assert_eq!(p.fetch(2), Some(Inst::Landmark));
        match p.fetch(3).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(target, 1),
            other => panic!("{other}"),
        }
        match p.fetch(4).unwrap() {
            Inst::Lw { off, .. } => assert_eq!(off, 8),
            other => panic!("{other}"),
        }
        assert_eq!(p.fetch(8).unwrap().opcode(), Opcode::Halt);
    }

    #[test]
    fn disassembly_round_trips() {
        let text = r#"
            f:
                li    $t0, -42
                addi  $t1, $t0, 7
                mul   $v0, $t0, $t1
                beq   $v0, $zero, @5
                sw    $v0, 4($sp)
            out:
                jr    $ra
        "#;
        let p = parse_asm(text).unwrap();
        let q = parse_asm(&p.disassemble()).unwrap();
        assert_eq!(p.code(), q.code());
        assert_eq!(
            p.symbols().collect::<Vec<_>>(),
            q.symbols().collect::<Vec<_>>()
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("nop\nbogus $t0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = parse_asm("lw $t0").unwrap_err();
        assert!(e.message.contains("wants 2 operands"));

        let e = parse_asm("li $t0, 12x").unwrap_err();
        assert!(e.message.contains("12x"));

        // An alphabetic operand to li is a label reference; if never
        // defined, that surfaces as an unresolved reference.
        let e = parse_asm("li $t0, zzz").unwrap_err();
        assert!(e.message.contains("unresolved"));

        let e = parse_asm("j nowhere").unwrap_err();
        assert!(e.message.contains("unresolved"));

        let e = parse_asm("a:\na:").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn li_with_label_loads_the_address() {
        let text = r#"
            main:
                li   $a0, worker
                halt
            worker:
                nop
        "#;
        let p = parse_asm(text).unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Li {
                rd: crate::Reg::A0,
                imm: 2
            })
        );
    }

    #[test]
    fn hex_immediates_and_comments() {
        let p = parse_asm("li $t0, 0x10 // sixteen\nli $t1, -0x2 # minus two\nhalt").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Li {
                rd: crate::Reg::T0,
                imm: 16
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Li {
                rd: crate::Reg::T1,
                imm: -2
            })
        );
    }

    #[test]
    fn entry_can_be_absolute() {
        let p = parse_asm(".entry @1\nnop\nhalt").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn rseq_directive_declares_a_descriptor() {
        let text = r#"
            .rseq win 3 handler 64
            .rseq @1 2 @4 128 norestart
            win:
                lw   $v0, 0($a0)
                li   $t2, 1
                sw   $t2, 0($a0)
                jr   $ra
            handler:
                j    win
        "#;
        let p = parse_asm(text).unwrap();
        assert_eq!(
            p.rseq_descs(),
            &[
                crate::RseqCs {
                    start_ip: 0,
                    post_commit_offset: 3,
                    abort_ip: 4,
                    flags: 0,
                    cs_addr: 64,
                },
                crate::RseqCs {
                    start_ip: 1,
                    post_commit_offset: 2,
                    abort_ip: 4,
                    flags: crate::RSEQ_CS_NO_RESTART_ON_PREEMPT,
                    cs_addr: 128,
                },
            ]
        );

        let e = parse_asm(".rseq win 3 handler").unwrap_err();
        assert!(e.message.contains(".rseq wants"));
        let e = parse_asm(".rseq nowhere 3 @0 64\nnop").unwrap_err();
        assert!(e.message.contains("not found"));
    }
}
