use crate::CodeAddr;

/// A code range occupied by a restartable atomic sequence:
/// `[start, start + len)` in instruction addresses.
///
/// Emitters declare these on the assembler ([`crate::Asm::declare_seq`]) so
/// the finished [`crate::Program`] carries its sequence map for static
/// analysis; the kernel-facing registration path passes the same values to
/// `SYS_RAS_REGISTER`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SeqRange {
    /// First instruction of the sequence.
    pub start: CodeAddr,
    /// Length in instructions.
    pub len: u32,
}

impl SeqRange {
    /// Exclusive end address.
    pub fn end(self) -> CodeAddr {
        self.start + self.len
    }

    /// Whether `pc` lies within the sequence.
    pub fn contains(self, pc: CodeAddr) -> bool {
        pc >= self.start && pc < self.end()
    }

    /// Whether two ranges share at least one address.
    pub fn overlaps(self, other: SeqRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_contains_overlaps() {
        let r = SeqRange { start: 4, len: 3 };
        assert_eq!(r.end(), 7);
        assert!(r.contains(4) && r.contains(6));
        assert!(!r.contains(3) && !r.contains(7));
        assert!(r.overlaps(SeqRange { start: 6, len: 5 }));
        assert!(!r.overlaps(SeqRange { start: 7, len: 1 }));
        assert!(!r.overlaps(SeqRange { start: 0, len: 4 }));
    }
}
