//! Binary encoding of instructions and program images.
//!
//! The ISA is a simulator IR rather than a real MIPS encoding, so
//! instructions encode into fixed **64-bit** words — wide enough to carry
//! full 32-bit immediates and absolute code targets losslessly, keeping
//! the PC-to-instruction mapping trivial (which the restartable-sequence
//! machinery depends on). Program images serialize to a small container
//! format with the code, the entry point, and the symbol table.
//!
//! ```text
//! instruction word (little-endian u64):
//!   bits  0..8    opcode
//!   bits  8..16   rd / rs (primary register)
//!   bits 16..24   rs / base (secondary register)
//!   bits 24..32   rt / condition / ALU op (selector)
//!   bits 32..64   immediate / offset / absolute target (u32)
//!
//! program container:
//!   magic  "RASP"            4 bytes
//!   version u32              currently 1
//!   entry   u32
//!   n_code  u32
//!   n_syms  u32
//!   code    n_code × u64
//!   symbols n_syms × { len u32, name bytes, addr u32 }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::{AluOp, CodeAddr, Cond, Inst, Program, Reg};

/// Error decoding an instruction or program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The container does not start with the `RASP` magic.
    BadMagic,
    /// Unsupported container version.
    BadVersion {
        /// The version found.
        found: u32,
    },
    /// The byte stream ended prematurely.
    Truncated,
    /// An instruction word carries an unknown opcode byte.
    UnknownOpcode {
        /// The offending byte.
        byte: u8,
    },
    /// A register field is out of range.
    BadRegister {
        /// The offending byte.
        byte: u8,
    },
    /// A selector field (ALU op or branch condition) is out of range.
    BadSelector {
        /// The offending byte.
        byte: u8,
    },
    /// A symbol name is not valid UTF-8.
    BadSymbolName,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing RASP magic"),
            DecodeError::BadVersion { found } => write!(f, "unsupported version {found}"),
            DecodeError::Truncated => write!(f, "unexpected end of image"),
            DecodeError::UnknownOpcode { byte } => write!(f, "unknown opcode byte {byte:#x}"),
            DecodeError::BadRegister { byte } => write!(f, "register byte {byte:#x} out of range"),
            DecodeError::BadSelector { byte } => write!(f, "selector byte {byte:#x} out of range"),
            DecodeError::BadSymbolName => write!(f, "symbol name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"RASP";
const VERSION: u32 = 1;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Slt => 8,
        AluOp::Sltu => 9,
        AluOp::Mul => 10,
    }
}

fn alu_from(byte: u8) -> Result<AluOp, DecodeError> {
    Ok(match byte {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Slt,
        9 => AluOp::Sltu,
        10 => AluOp::Mul,
        byte => return Err(DecodeError::BadSelector { byte }),
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Ltu => 4,
        Cond::Geu => 5,
    }
}

fn cond_from(byte: u8) -> Result<Cond, DecodeError> {
    Ok(match byte {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Ltu,
        5 => Cond::Geu,
        byte => return Err(DecodeError::BadSelector { byte }),
    })
}

fn reg_from(byte: u8) -> Result<Reg, DecodeError> {
    Reg::new(byte).ok_or(DecodeError::BadRegister { byte })
}

fn pack(op: u8, r1: Reg, r2: Reg, sel: u8, imm: u32) -> u64 {
    u64::from(op)
        | (r1.index() as u64) << 8
        | (r2.index() as u64) << 16
        | u64::from(sel) << 24
        | u64::from(imm) << 32
}

/// Encodes one instruction into its 64-bit word.
pub fn encode_inst(inst: Inst) -> u64 {
    let z = Reg::ZERO;
    match inst {
        Inst::Li { rd, imm } => pack(0, rd, z, 0, imm as u32),
        Inst::Alu { op, rd, rs, rt } => pack(1, rd, rs, alu_code(op), rt.index() as u32),
        Inst::AluI { op, rd, rs, imm } => pack(2, rd, rs, alu_code(op), imm as u32),
        Inst::Lw { rd, base, off } => pack(3, rd, base, 0, off as u32),
        Inst::Sw { rs, base, off } => pack(4, rs, base, 0, off as u32),
        Inst::Branch {
            cond,
            rs,
            rt,
            target,
        } => pack(5, rs, rt, cond_code(cond), target),
        Inst::J { target } => pack(6, z, z, 0, target),
        Inst::Jal { target } => pack(7, z, z, 0, target),
        Inst::Jr { rs } => pack(8, rs, z, 0, 0),
        Inst::Jalr { rd, rs } => pack(9, rd, rs, 0, 0),
        Inst::Nop => pack(10, z, z, 0, 0),
        Inst::Landmark => pack(11, z, z, 0, 0),
        Inst::Syscall => pack(12, z, z, 0, 0),
        Inst::Tas { rd, base } => pack(13, rd, base, 0, 0),
        Inst::BeginAtomic => pack(14, z, z, 0, 0),
        Inst::Halt => pack(15, z, z, 0, 0),
    }
}

/// Decodes one 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcode bytes or out-of-range
/// register/selector fields.
pub fn decode_inst(word: u64) -> Result<Inst, DecodeError> {
    let op = (word & 0xff) as u8;
    let r1 = ((word >> 8) & 0xff) as u8;
    let r2 = ((word >> 16) & 0xff) as u8;
    let sel = ((word >> 24) & 0xff) as u8;
    let imm = (word >> 32) as u32;
    Ok(match op {
        0 => Inst::Li {
            rd: reg_from(r1)?,
            imm: imm as i32,
        },
        1 => Inst::Alu {
            op: alu_from(sel)?,
            rd: reg_from(r1)?,
            rs: reg_from(r2)?,
            rt: reg_from((imm & 0xff) as u8)?,
        },
        2 => Inst::AluI {
            op: alu_from(sel)?,
            rd: reg_from(r1)?,
            rs: reg_from(r2)?,
            imm: imm as i32,
        },
        3 => Inst::Lw {
            rd: reg_from(r1)?,
            base: reg_from(r2)?,
            off: imm as i32,
        },
        4 => Inst::Sw {
            rs: reg_from(r1)?,
            base: reg_from(r2)?,
            off: imm as i32,
        },
        5 => Inst::Branch {
            cond: cond_from(sel)?,
            rs: reg_from(r1)?,
            rt: reg_from(r2)?,
            target: imm,
        },
        6 => Inst::J { target: imm },
        7 => Inst::Jal { target: imm },
        8 => Inst::Jr { rs: reg_from(r1)? },
        9 => Inst::Jalr {
            rd: reg_from(r1)?,
            rs: reg_from(r2)?,
        },
        10 => Inst::Nop,
        11 => Inst::Landmark,
        12 => Inst::Syscall,
        13 => Inst::Tas {
            rd: reg_from(r1)?,
            base: reg_from(r2)?,
        },
        14 => Inst::BeginAtomic,
        15 => Inst::Halt,
        byte => return Err(DecodeError::UnknownOpcode { byte }),
    })
}

impl Program {
    /// Serializes the program (code, entry point, symbols) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.entry().to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        let symbols: Vec<(&str, CodeAddr)> = self.symbols().collect();
        out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
        for inst in self.code() {
            out.extend_from_slice(&encode_inst(*inst).to_le_bytes());
        }
        for (name, addr) in symbols {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out
    }

    /// Deserializes a program previously written by [`Program::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a malformed image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        let mut cursor = Cursor { bytes, at: 0 };
        if cursor.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = cursor.u32()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion { found: version });
        }
        let entry = cursor.u32()?;
        let n_code = cursor.u32()? as usize;
        let n_syms = cursor.u32()? as usize;
        // Validate counts against the remaining bytes before allocating,
        // so a corrupted header cannot trigger a giant allocation.
        if cursor.remaining() / 8 < n_code {
            return Err(DecodeError::Truncated);
        }
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            code.push(decode_inst(cursor.u64()?)?);
        }
        if cursor.remaining() / 8 < n_syms {
            return Err(DecodeError::Truncated);
        }
        let mut symbols = BTreeMap::new();
        for _ in 0..n_syms {
            let len = cursor.u32()? as usize;
            let name = std::str::from_utf8(cursor.take(len)?)
                .map_err(|_| DecodeError::BadSymbolName)?
                .to_owned();
            let addr = cursor.u32()?;
            symbols.insert(name, addr);
        }
        Ok(Program::new(code, symbols, entry, Vec::new(), Vec::new()))
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.at)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(DecodeError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    fn sample_insts() -> Vec<Inst> {
        vec![
            Inst::Li {
                rd: Reg::A0,
                imm: -12345,
            },
            Inst::Li {
                rd: Reg::T0,
                imm: i32::MAX,
            },
            Inst::Alu {
                op: AluOp::Mul,
                rd: Reg::V0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Inst::AluI {
                op: AluOp::Sra,
                rd: Reg::S0,
                rs: Reg::S1,
                imm: -7,
            },
            Inst::Lw {
                rd: Reg::V0,
                base: Reg::A0,
                off: 2048,
            },
            Inst::Sw {
                rs: Reg::T7,
                base: Reg::SP,
                off: -4,
            },
            Inst::Branch {
                cond: Cond::Geu,
                rs: Reg::T0,
                rt: Reg::T1,
                target: 0x00FF_FFFF,
            },
            Inst::J { target: 7 },
            Inst::Jal { target: u32::MAX },
            Inst::Jr { rs: Reg::RA },
            Inst::Jalr {
                rd: Reg::T9,
                rs: Reg::T8,
            },
            Inst::Nop,
            Inst::Landmark,
            Inst::Syscall,
            Inst::Tas {
                rd: Reg::V0,
                base: Reg::A0,
            },
            Inst::BeginAtomic,
            Inst::Halt,
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for inst in sample_insts() {
            let word = encode_inst(inst);
            assert_eq!(decode_inst(word), Ok(inst), "{inst}");
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(
            decode_inst(0xfe),
            Err(DecodeError::UnknownOpcode { byte: 0xfe })
        );
    }

    #[test]
    fn bad_register_is_rejected() {
        // opcode 8 = jr with register byte 40.
        let word = 8u64 | (40 << 8);
        assert_eq!(
            decode_inst(word),
            Err(DecodeError::BadRegister { byte: 40 })
        );
    }

    #[test]
    fn bad_selector_is_rejected() {
        // opcode 5 = branch with condition byte 9.
        let word = 5u64 | (9 << 24);
        assert_eq!(decode_inst(word), Err(DecodeError::BadSelector { byte: 9 }));
    }

    fn sample_program() -> Program {
        let mut asm = Asm::new();
        asm.bind_symbol("main");
        for inst in sample_insts() {
            if matches!(inst, Inst::Halt) {
                asm.bind_symbol("the_end");
            }
            asm.emit(inst);
        }
        asm.set_entry_here();
        asm.nop();
        asm.finish().unwrap()
    }

    #[test]
    fn program_container_roundtrips() {
        let p = sample_program();
        let bytes = p.to_bytes();
        let q = Program::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.symbol("main"), Some(0));
        assert_eq!(q.symbol("the_end"), p.symbol("the_end"));
        assert_eq!(q.entry(), p.entry());
    }

    #[test]
    fn container_rejects_corruption() {
        let p = sample_program();
        let mut bytes = p.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(Program::from_bytes(&bad), Err(DecodeError::BadMagic));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(
            Program::from_bytes(&bad),
            Err(DecodeError::BadVersion { found: 99 })
        );
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(Program::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Appending junk is tolerated (trailing bytes ignored).
        bytes.extend_from_slice(b"junk");
        assert!(Program::from_bytes(&bytes).is_ok());
    }
}
