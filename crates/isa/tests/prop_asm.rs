//! Property tests for the assembler and ISA types.

use proptest::prelude::*;
use ras_isa::{AluOp, Asm, Cond, Inst, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

proptest! {
    /// Every register Display form parses back to the same register.
    #[test]
    fn reg_display_roundtrip(r in arb_reg()) {
        let shown = r.to_string();
        prop_assert_eq!(shown.parse::<Reg>().unwrap(), r);
    }

    /// ALU operations never panic and Slt/Sltu always produce 0 or 1.
    #[test]
    fn alu_total_and_slt_boolean(op in arb_alu_op(), a: u32, b: u32) {
        let r = op.apply(a, b);
        if matches!(op, AluOp::Slt | AluOp::Sltu) {
            prop_assert!(r <= 1);
        }
    }

    /// Slt agrees with signed comparison, Sltu with unsigned.
    #[test]
    fn slt_matches_native_comparison(a: u32, b: u32) {
        prop_assert_eq!(AluOp::Slt.apply(a, b) == 1, (a as i32) < (b as i32));
        prop_assert_eq!(AluOp::Sltu.apply(a, b) == 1, a < b);
    }

    /// Branch conditions are each other's negations in the expected pairs.
    #[test]
    fn cond_negation_pairs(c in arb_cond(), a: u32, b: u32) {
        let neg = match c {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        };
        prop_assert_ne!(c.holds(a, b), neg.holds(a, b));
    }

    /// A program made of `n` forward jumps to a common exit resolves every
    /// target to the same address, and instruction count is `n + 1`.
    #[test]
    fn forward_jumps_resolve(n in 1usize..64) {
        let mut asm = Asm::new();
        let exit = asm.label();
        for _ in 0..n {
            asm.j(exit);
        }
        asm.bind(exit);
        asm.halt();
        let p = asm.finish().unwrap();
        prop_assert_eq!(p.len(), n + 1);
        for i in 0..n {
            prop_assert_eq!(p.fetch(i as u32), Some(Inst::J { target: n as u32 }));
        }
    }

    /// Emitter return addresses are consecutive regardless of instruction mix.
    #[test]
    fn addresses_are_consecutive(ops in prop::collection::vec(0u8..6, 1..100)) {
        let mut asm = Asm::new();
        for (i, op) in ops.iter().enumerate() {
            let at = match op {
                0 => asm.nop(),
                1 => asm.li(Reg::T0, i as i32),
                2 => asm.lw(Reg::T1, Reg::SP, 0),
                3 => asm.sw(Reg::T1, Reg::SP, 0),
                4 => asm.landmark(),
                _ => asm.add(Reg::T0, Reg::T0, Reg::T1),
            };
            prop_assert_eq!(at, i as u32);
        }
        let p = asm.finish().unwrap();
        prop_assert_eq!(p.len(), ops.len());
    }

    /// Disassembly contains one line per instruction.
    #[test]
    fn disassembly_is_complete(n in 1usize..50) {
        let mut asm = Asm::new();
        for _ in 0..n {
            asm.nop();
        }
        let p = asm.finish().unwrap();
        prop_assert_eq!(p.disassemble().lines().count(), n);
    }
}
