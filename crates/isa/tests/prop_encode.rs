//! Property tests for the binary encoding and the text parser: arbitrary
//! instructions and programs survive both round trips.

use proptest::prelude::*;
use ras_isa::{decode_inst, encode_inst, parse_asm, AluOp, Asm, Cond, Inst, Program, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs, rt)| Inst::Alu {
            op,
            rd,
            rs,
            rt
        }),
        (arb_alu(), arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs, imm)| Inst::AluI {
            op,
            rd,
            rs,
            imm
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, base, off)| Inst::Lw { rd, base, off }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rs, base, off)| Inst::Sw { rs, base, off }),
        (arb_cond(), arb_reg(), arb_reg(), any::<u32>()).prop_map(|(cond, rs, rt, target)| {
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            }
        }),
        any::<u32>().prop_map(|target| Inst::J { target }),
        any::<u32>().prop_map(|target| Inst::Jal { target }),
        arb_reg().prop_map(|rs| Inst::Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Jalr { rd, rs }),
        Just(Inst::Nop),
        Just(Inst::Landmark),
        Just(Inst::Syscall),
        (arb_reg(), arb_reg()).prop_map(|(rd, base)| Inst::Tas { rd, base }),
        Just(Inst::BeginAtomic),
        Just(Inst::Halt),
    ]
}

proptest! {
    /// Every instruction survives binary encode/decode.
    #[test]
    fn inst_binary_roundtrip(inst in arb_inst()) {
        prop_assert_eq!(decode_inst(encode_inst(inst)), Ok(inst));
    }

    /// Whole programs survive the container round trip, including entry
    /// point and symbols.
    #[test]
    fn program_container_roundtrip(
        insts in prop::collection::vec(arb_inst(), 1..60),
        entry in 0u32..50,
        with_symbols: bool,
    ) {
        let mut asm = Asm::new();
        for (i, inst) in insts.iter().enumerate() {
            if with_symbols && i % 7 == 0 {
                asm.bind_symbol(&format!("sym{i}"));
            }
            if i as u32 == entry.min(insts.len() as u32 - 1) {
                asm.set_entry_here();
            }
            asm.emit(*inst);
        }
        let p = asm.finish().unwrap();
        let q = Program::from_bytes(&p.to_bytes()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Corrupting any single byte of the container either errors or still
    /// decodes to *some* program — it never panics.
    #[test]
    fn corruption_never_panics(
        insts in prop::collection::vec(arb_inst(), 1..20),
        byte in 0usize..64,
        value: u8,
    ) {
        let mut asm = Asm::new();
        for inst in &insts {
            asm.emit(*inst);
        }
        let mut bytes = asm.finish().unwrap().to_bytes();
        let idx = byte % bytes.len();
        bytes[idx] = value;
        let _ = Program::from_bytes(&bytes);
    }

    /// Disassembly of any label-free program parses back to identical code.
    /// (Instructions whose immediates collide with the disassembler's
    /// address annotations are still unambiguous because targets print as
    /// `@N`.)
    #[test]
    fn disasm_parse_roundtrip(insts in prop::collection::vec(arb_inst(), 1..40)) {
        // Keep targets in range so the listing is self-consistent.
        let len = insts.len() as u32;
        let mut asm = Asm::new();
        for inst in &insts {
            let fixed = match *inst {
                Inst::Branch { cond, rs, rt, target } => Inst::Branch { cond, rs, rt, target: target % len },
                Inst::J { target } => Inst::J { target: target % len },
                Inst::Jal { target } => Inst::Jal { target: target % len },
                other => other,
            };
            asm.emit(fixed);
        }
        let p = asm.finish().unwrap();
        let q = parse_asm(&p.disassemble()).unwrap();
        prop_assert_eq!(p.code(), q.code());
    }
}
