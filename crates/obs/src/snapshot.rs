//! `ras-stat` snapshot rendering and schema validation.
//!
//! Three deterministic exports of a [`Telemetry`] aggregate: a
//! fixed-width percentile table, a Prometheus-style text exposition, and
//! a JSON snapshot validated by [`validate_stat_snapshot`]. Everything
//! is integer-formatted in a fixed field order, so the same run always
//! produces the same bytes — the determinism the CI artifact gate pins.

use std::fmt::Write as _;

use crate::hist::Log2Histogram;
use crate::telemetry::Telemetry;
use crate::{parse_json, Json};

/// The JSON snapshot's schema identifier.
pub const STAT_SCHEMA: &str = "ras-stat-v1";

/// Run-level context attached to a snapshot.
#[derive(Debug, Clone, Default)]
pub struct SnapshotMeta {
    /// Mechanism id (e.g. `ras-registered`).
    pub mechanism: String,
    /// Workload name (e.g. `lock-server`).
    pub workload: String,
    /// Client threads.
    pub clients: u64,
    /// Contended locks.
    pub locks: u64,
    /// Operations per client.
    pub ops_per_client: u64,
    /// Arrival schedule id (`uniform` / `zipfian` / `bursty`).
    pub arrival: String,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Total completed lock operations.
    pub total_ops: u64,
}

/// A [`Telemetry`] aggregate plus its run context, ready to export.
#[derive(Debug, Clone)]
pub struct StatSnapshot<'a> {
    /// Run-level context.
    pub meta: SnapshotMeta,
    /// The aggregate to export.
    pub telemetry: &'a Telemetry,
}

fn hist_json(out: &mut String, h: &Log2Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.percentile_permille(500),
        h.percentile_permille(900),
        h.percentile_permille(990),
        h.percentile_permille(999)
    );
    for (i, (idx, count)) in h.buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},{count}]");
    }
    out.push_str("]}");
}

impl StatSnapshot<'_> {
    /// The schema-validated JSON snapshot. Integer-only, fixed field
    /// order: the same run always serializes to the same bytes.
    pub fn to_json(&self) -> String {
        let m = &self.meta;
        let t = self.telemetry;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"{STAT_SCHEMA}\",\n  \"mechanism\": \"{}\",\n  \"workload\": \"{}\",\n  \"clients\": {},\n  \"locks\": {},\n  \"ops_per_client\": {},\n  \"arrival\": \"{}\",\n  \"total_cycles\": {},\n  \"total_ops\": {},\n",
            m.mechanism, m.workload, m.clients, m.locks, m.ops_per_client, m.arrival,
            m.total_cycles, m.total_ops
        );
        s.push_str("  \"counters\": {");
        for (i, (name, value)) in t.registry().counters().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": {value}");
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in t.registry().gauges().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": {value}");
        }
        s.push_str("\n  },\n  \"scheduler\": {\n    \"runqueue_depth\": ");
        hist_json(&mut s, &t.runqueue_depth);
        s.push_str(",\n    \"quantum_used\": ");
        hist_json(&mut s, &t.quantum_used);
        s.push_str("\n  },\n  \"locks_detail\": [");
        for (i, lock) in t.locks().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"addr\":{},\"acquisitions\":{},\"releases\":{},\"contended_probes\":{},\"wait\":",
                lock.addr, lock.acquisitions, lock.releases, lock.contended_probes
            );
            hist_json(&mut s, &lock.wait);
            s.push_str(",\"hold\":");
            hist_json(&mut s, &lock.hold);
            s.push('}');
        }
        s.push_str("\n  ],\n  \"threads\": [");
        let mut first = true;
        for th in t.threads() {
            if th.acquisitions == 0 && th.wait_cycles == 0 && th.hold_cycles == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n    {{\"thread\":{},\"acquisitions\":{},\"wait_cycles\":{},\"hold_cycles\":{}}}",
                th.thread, th.acquisitions, th.wait_cycles, th.hold_cycles
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Prometheus-style text exposition: counters, gauges, and one
    /// cumulative histogram family per lock metric.
    pub fn to_prometheus(&self) -> String {
        let t = self.telemetry;
        let mut s = String::new();
        for (name, value) in t.registry().counters() {
            let _ = writeln!(s, "# TYPE ras_{name} counter");
            let _ = writeln!(s, "ras_{name} {value}");
        }
        for (name, value) in t.registry().gauges() {
            let _ = writeln!(s, "# TYPE ras_{name} gauge");
            let _ = writeln!(s, "ras_{name} {value}");
        }
        let family = |s: &mut String, metric: &str, labels: &str, h: &Log2Histogram| {
            let _ = writeln!(s, "# TYPE {metric} histogram");
            let mut cumulative = 0;
            for (idx, count) in h.buckets() {
                cumulative += count;
                let le = crate::hist::bucket_bounds(idx).1;
                let sep = if labels.is_empty() { "" } else { "," };
                let _ = writeln!(
                    s,
                    "{metric}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
            let sep = if labels.is_empty() { "" } else { "," };
            let _ = writeln!(
                s,
                "{metric}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
            );
            if labels.is_empty() {
                let _ = writeln!(s, "{metric}_sum {}", h.sum());
                let _ = writeln!(s, "{metric}_count {}", h.count());
            } else {
                let _ = writeln!(s, "{metric}_sum{{{labels}}} {}", h.sum());
                let _ = writeln!(s, "{metric}_count{{{labels}}} {}", h.count());
            }
        };
        for lock in t.locks() {
            let labels = format!("lock=\"{:#010x}\"", lock.addr);
            family(&mut s, "ras_lock_wait_cycles", &labels, &lock.wait);
            family(&mut s, "ras_lock_hold_cycles", &labels, &lock.hold);
        }
        family(&mut s, "ras_runqueue_depth", "", &t.runqueue_depth);
        family(&mut s, "ras_quantum_used_cycles", "", &t.quantum_used);
        s
    }

    /// The human-facing percentile table: one row per lock, wait and
    /// hold p50/p90/p99/p99.9 side by side.
    pub fn to_table(&self) -> String {
        let m = &self.meta;
        let t = self.telemetry;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "lock-server telemetry — {} · {} clients × {} locks × {} ops ({}) · {} cycles",
            m.mechanism, m.clients, m.locks, m.ops_per_client, m.arrival, m.total_cycles
        );
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>8} {:>8}  {:<44} {:<44}",
            "lock", "acq", "rel", "cont", "wait (cycles)", "hold (cycles)"
        );
        for lock in t.locks() {
            let _ = writeln!(
                s,
                "{:<#12x} {:>8} {:>8} {:>8}  {:<44} {:<44}",
                lock.addr,
                lock.acquisitions,
                lock.releases,
                lock.contended_probes,
                lock.wait.percentile_summary(),
                lock.hold.percentile_summary()
            );
        }
        let _ = writeln!(
            s,
            "runqueue depth   {}",
            t.runqueue_depth.percentile_summary()
        );
        let _ = writeln!(
            s,
            "quantum used     {}",
            t.quantum_used.percentile_summary()
        );
        for (name, value) in t.registry().counters() {
            let _ = writeln!(s, "{name:<28} {value}");
        }
        s
    }
}

/// What [`validate_stat_snapshot`] counted while checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatSummary {
    /// Locks in `locks_detail`.
    pub locks: usize,
    /// Entries in `threads`.
    pub threads: usize,
    /// Total acquisitions summed over locks.
    pub acquisitions: u64,
}

fn require_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))?;
    let n = v
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{ctx}: \"{key}\" is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn check_hist(obj: &Json, ctx: &str) -> Result<(), String> {
    let count = require_u64(obj, "count", ctx)?;
    require_u64(obj, "sum", ctx)?;
    let p50 = require_u64(obj, "p50", ctx)?;
    let p90 = require_u64(obj, "p90", ctx)?;
    let p99 = require_u64(obj, "p99", ctx)?;
    let p999 = require_u64(obj, "p999", ctx)?;
    if !(p50 <= p90 && p90 <= p99 && p99 <= p999) {
        return Err(format!("{ctx}: percentiles not monotone"));
    }
    let buckets = obj
        .get("buckets")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| format!("{ctx}: missing \"buckets\" array"))?;
    let mut total = 0u64;
    let mut last_idx: Option<u64> = None;
    for b in buckets {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{ctx}: bucket is not an [index, count] pair"))?;
        let idx = pair[0]
            .as_f64()
            .ok_or_else(|| format!("{ctx}: bucket index not a number"))? as u64;
        let count = pair[1]
            .as_f64()
            .ok_or_else(|| format!("{ctx}: bucket count not a number"))? as u64;
        if idx >= crate::hist::HIST_BUCKETS as u64 {
            return Err(format!("{ctx}: bucket index {idx} out of range"));
        }
        if let Some(prev) = last_idx {
            if idx <= prev {
                return Err(format!("{ctx}: bucket indices not strictly increasing"));
            }
        }
        if count == 0 {
            return Err(format!("{ctx}: empty bucket serialized"));
        }
        last_idx = Some(idx);
        total += count;
    }
    if total != count {
        return Err(format!(
            "{ctx}: bucket counts sum to {total}, \"count\" says {count}"
        ));
    }
    Ok(())
}

/// Validates a `ras-stat` JSON snapshot against the `ras-stat-v1`
/// schema: required fields with the right types, in-range strictly
/// increasing histogram buckets whose counts sum to `count`, and
/// monotone percentiles. Returns a summary of what was checked.
pub fn validate_stat_snapshot(text: &str) -> Result<StatSummary, String> {
    let root = parse_json(text)?;
    match root.get("schema").and_then(|s| s.as_str()) {
        Some(STAT_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema \"{other}\"")),
        None => return Err("missing \"schema\"".to_owned()),
    }
    for key in ["mechanism", "workload", "arrival"] {
        if root.get(key).and_then(|s| s.as_str()).is_none() {
            return Err(format!("missing string field \"{key}\""));
        }
    }
    for key in [
        "clients",
        "locks",
        "ops_per_client",
        "total_cycles",
        "total_ops",
    ] {
        require_u64(&root, key, "top level")?;
    }
    if root.get("counters").is_none() || root.get("gauges").is_none() {
        return Err("missing \"counters\"/\"gauges\" registry sections".to_owned());
    }
    let scheduler = root
        .get("scheduler")
        .ok_or_else(|| "missing \"scheduler\"".to_owned())?;
    for key in ["runqueue_depth", "quantum_used"] {
        let h = scheduler
            .get(key)
            .ok_or_else(|| format!("scheduler: missing \"{key}\""))?;
        check_hist(h, &format!("scheduler.{key}"))?;
    }
    let locks = root
        .get("locks_detail")
        .and_then(|l| l.as_arr())
        .ok_or_else(|| "missing \"locks_detail\" array".to_owned())?;
    let declared_locks = require_u64(&root, "locks", "top level")?;
    if locks.len() as u64 != declared_locks {
        return Err(format!(
            "locks_detail has {} entries, \"locks\" says {declared_locks}",
            locks.len()
        ));
    }
    let mut acquisitions = 0;
    for (i, lock) in locks.iter().enumerate() {
        let ctx = format!("locks_detail[{i}]");
        require_u64(lock, "addr", &ctx)?;
        acquisitions += require_u64(lock, "acquisitions", &ctx)?;
        require_u64(lock, "releases", &ctx)?;
        require_u64(lock, "contended_probes", &ctx)?;
        let wait = lock
            .get("wait")
            .ok_or_else(|| format!("{ctx}: missing \"wait\""))?;
        check_hist(wait, &format!("{ctx}.wait"))?;
        let hold = lock
            .get("hold")
            .ok_or_else(|| format!("{ctx}: missing \"hold\""))?;
        check_hist(hold, &format!("{ctx}.hold"))?;
    }
    let threads = root
        .get("threads")
        .and_then(|t| t.as_arr())
        .ok_or_else(|| "missing \"threads\" array".to_owned())?;
    for (i, th) in threads.iter().enumerate() {
        let ctx = format!("threads[{i}]");
        require_u64(th, "thread", &ctx)?;
        require_u64(th, "acquisitions", &ctx)?;
        require_u64(th, "wait_cycles", &ctx)?;
        require_u64(th, "hold_cycles", &ctx)?;
    }
    Ok(StatSummary {
        locks: locks.len(),
        threads: threads.len(),
        acquisitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_machine::{AccessKind, MemAccess};

    fn sample_snapshot() -> (SnapshotMeta, Telemetry) {
        let mut t = Telemetry::new(&[64, 68]);
        let acc = |clock, kind, addr, value| MemAccess {
            pc: 0,
            addr,
            kind,
            clock,
            atomic: false,
            value,
        };
        t.observe(0, &acc(0, AccessKind::Rmw, 64, 0));
        t.observe(1, &acc(5, AccessKind::Rmw, 64, 1));
        t.observe(0, &acc(20, AccessKind::Store, 64, 0));
        t.observe(1, &acc(22, AccessKind::Rmw, 64, 0));
        t.observe(1, &acc(40, AccessKind::Store, 64, 0));
        t.observe(2, &acc(50, AccessKind::Store, 68, 1));
        t.observe(2, &acc(90, AccessKind::Store, 68, 0));
        t.sample_runqueue(3);
        let meta = SnapshotMeta {
            mechanism: "ras-registered".to_owned(),
            workload: "lock-server".to_owned(),
            clients: 3,
            locks: 2,
            ops_per_client: 1,
            arrival: "uniform".to_owned(),
            total_cycles: 90,
            total_ops: 3,
        };
        (meta, t)
    }

    #[test]
    fn json_snapshot_validates_and_is_deterministic() {
        let (meta, t) = sample_snapshot();
        let snap = StatSnapshot {
            meta,
            telemetry: &t,
        };
        let a = snap.to_json();
        let b = snap.to_json();
        assert_eq!(a, b, "same snapshot must serialize to the same bytes");
        let summary = validate_stat_snapshot(&a).expect("snapshot validates");
        assert_eq!(summary.locks, 2);
        assert_eq!(summary.acquisitions, 3);
    }

    #[test]
    fn validator_rejects_tampered_snapshots() {
        let (meta, t) = sample_snapshot();
        let snap = StatSnapshot {
            meta,
            telemetry: &t,
        };
        let good = snap.to_json();
        let bad_schema = good.replace("ras-stat-v1", "ras-stat-v0");
        assert!(validate_stat_snapshot(&bad_schema).is_err());
        let bad_count = good.replacen("\"count\":2", "\"count\":3", 1);
        assert!(
            validate_stat_snapshot(&bad_count).is_err(),
            "bucket-sum mismatch must be rejected"
        );
        let bad_locks = good.replace("\"locks\": 2", "\"locks\": 5");
        assert!(validate_stat_snapshot(&bad_locks).is_err());
        assert!(validate_stat_snapshot("{}").is_err());
        assert!(validate_stat_snapshot("not json").is_err());
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let (meta, t) = sample_snapshot();
        let snap = StatSnapshot {
            meta,
            telemetry: &t,
        };
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE ras_lock_wait_cycles histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("ras_lock_acquisitions_total 3"));
        // Cumulative: every +Inf bucket equals the family count.
        for family in ["ras_lock_wait_cycles", "ras_lock_hold_cycles"] {
            let infs: Vec<&str> = text
                .lines()
                .filter(|l| l.starts_with(family) && l.contains("+Inf"))
                .collect();
            assert!(!infs.is_empty());
        }
    }

    #[test]
    fn table_lists_every_lock() {
        let (meta, t) = sample_snapshot();
        let snap = StatSnapshot {
            meta,
            telemetry: &t,
        };
        let table = snap.to_table();
        assert!(table.contains("0x40"));
        assert!(table.contains("0x44"));
        assert!(table.contains("p99.9="));
        assert!(table.contains("runqueue depth"));
    }
}
