//! A deterministic fixed-bucket log2 latency histogram.
//!
//! The streaming telemetry layer needs a duration aggregate whose memory
//! is independent of the number of events and whose percentile answers
//! are exactly reproducible: same inputs, same buckets, same bytes. A
//! [`Log2Histogram`] has one bucket per bit-length (65 buckets covering
//! all of `u64`), `u64` counts, and integer-only percentile lookup — no
//! floating point anywhere near the recorded values, so merges and
//! percentile reads commute with the order events arrived in.

/// Number of buckets: one per possible bit-length of a `u64` (0..=64).
pub const HIST_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram with deterministic percentile lookup.
///
/// Bucket `i` holds values whose bit-length is `i`: bucket 0 is exactly
/// `{0}`, bucket `i > 0` covers `[2^(i-1), 2^i - 1]`. Memory is constant
/// (`65 × u64`), so a histogram per lock keeps the telemetry layer at
/// O(buckets × locks) regardless of event volume.
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.total)
            .field("sum", &self.sum)
            .field("buckets", &self.buckets().collect::<Vec<_>>())
            .finish()
    }
}

/// The bucket index for a value: its bit-length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= HIST_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HIST_BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == HIST_BUCKETS - 1 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (index - 1), (1 << index) - 1)
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[bucket_index(value)] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Folds `other` into `self`. Merging is commutative and associative,
    /// which is what lets per-thread shards aggregate at scheduling
    /// boundaries without changing any percentile answer.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The non-empty buckets as `(index, count)` pairs, in index order.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The raw per-bucket counts.
    pub fn counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// The `permille/1000` quantile as the upper bound of the bucket
    /// containing that rank (`permille` 500 = p50, 999 = p99.9).
    ///
    /// Integer-only: the rank is `ceil(permille × count / 1000)` clamped
    /// to `[1, count]`, and the answer is the deterministic bucket upper
    /// bound — an over-approximation by at most the bucket width, which
    /// the differential tests pin against exact sorted percentiles.
    /// Returns 0 on an empty histogram.
    pub fn percentile_permille(&self, permille: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (permille * self.total).div_ceil(1000).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// The fixed percentile row every exporter uses:
    /// `p50=a p90=b p99=c p99.9=d`. Byte-identical output for equal
    /// histograms — this string is the differential-test pin.
    pub fn percentile_summary(&self) -> String {
        format!(
            "p50={} p90={} p99={} p99.9={}",
            self.percentile_permille(500),
            self.percentile_permille(900),
            self.percentile_permille(990),
            self.percentile_permille(999)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_partition_the_u64_line() {
        let mut next = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} starts where the last ended");
            assert!(hi >= lo);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bound_the_exact_answer() {
        let mut h = Log2Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * i % 7919).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for permille in [500u64, 900, 990, 999] {
            let approx = h.percentile_permille(permille);
            assert!(approx >= last, "percentiles must be monotone");
            last = approx;
            // The reported bucket upper bound dominates the exact rank
            // statistic and is within one bucket of it.
            let rank = (permille * 1000).div_ceil(1000).clamp(1, 1000);
            let exact = sorted[(rank - 1) as usize];
            assert!(approx >= exact, "p{permille}: {approx} < exact {exact}");
            let (lo, _) = bucket_bounds(bucket_index(approx));
            assert!(exact >= lo || exact == 0, "exact below the bucket floor");
        }
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_permille(500), 0);
        assert_eq!(h.percentile_summary(), "p50=0 p90=0 p99=0 p99.9=0");
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for i in 0..500u64 {
            let v = i.wrapping_mul(2654435761) % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.percentile_summary(), whole.percentile_summary());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record_n(37, 10);
        for _ in 0..10 {
            b.record(37);
        }
        assert_eq!(a, b);
        assert_eq!(a.sum(), 370);
    }
}
