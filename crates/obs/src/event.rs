//! The structured event vocabulary the kernel emits.
//!
//! Thread identities are raw `u32`s rather than `ras_kernel::ThreadId`:
//! the kernel depends on this crate, not the other way around, so the
//! event layer stays reusable by anything that schedules threads.

/// Why a thread was switched off the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// The preemption timer expired.
    Quantum,
    /// The thread yielded voluntarily (`SYS_YIELD`).
    Yield,
    /// The thread blocked on a futex word or a join.
    Block,
    /// The thread went to sleep until a deadline.
    Sleep,
    /// A page fault suspended the thread mid-instruction.
    PageFault,
    /// The thread exited.
    Exit,
}

impl SwitchReason {
    /// A short lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SwitchReason::Quantum => "quantum",
            SwitchReason::Yield => "yield",
            SwitchReason::Block => "block",
            SwitchReason::Sleep => "sleep",
            SwitchReason::PageFault => "page-fault",
            SwitchReason::Exit => "exit",
        }
    }
}

/// One structured observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// Recording was enabled; `threads` threads already existed (at
    /// minimum the main thread, spawned at kernel boot before any
    /// recorder can be attached).
    Boot {
        /// Threads alive when recording started.
        threads: u32,
    },
    /// A thread was created.
    Spawn {
        /// The new thread.
        thread: u32,
    },
    /// A thread was given the processor.
    Dispatch {
        /// The thread.
        thread: u32,
    },
    /// A thread was switched off the processor.
    SwitchOut {
        /// The thread.
        thread: u32,
        /// Why it stopped running.
        reason: SwitchReason,
        /// Whether its PC was inside a restartable atomic sequence at
        /// suspension time — the quantity the paper argues is almost
        /// always false.
        inside_sequence: bool,
    },
    /// A restartable atomic sequence was rolled back.
    Rollback {
        /// The suspended thread.
        thread: u32,
        /// PC at suspension.
        from: u32,
        /// Sequence start it was rolled back to.
        to: u32,
        /// Straight-line cycle cost of the instructions in `[to, from)`
        /// that must re-execute — the work the rollback wasted.
        wasted_cycles: u64,
    },
    /// The thread was redirected through the user-level recovery routine.
    UserRedirect {
        /// The thread.
        thread: u32,
    },
    /// A system call trapped into the kernel.
    Syscall {
        /// The calling thread.
        thread: u32,
        /// The syscall number (`ras_isa::abi::SYS_*`).
        num: u32,
    },
    /// A kernel-emulated Test-And-Set probed a lock word.
    LockAttempt {
        /// The calling thread.
        thread: u32,
        /// The lock word address.
        addr: u32,
        /// Whether the probe saw the lock free (old value zero).
        acquired: bool,
    },
    /// A restartable sequence range was registered (`SYS_RAS_REGISTER`).
    SeqRegister {
        /// The registering thread.
        thread: u32,
        /// First PC of the sequence.
        start: u32,
        /// Length in instructions.
        len: u32,
    },
    /// A thread registered its rseq area (`SYS_RSEQ`).
    RseqRegister {
        /// The registering thread.
        thread: u32,
        /// Byte address of the thread's rseq area word.
        area: u32,
    },
    /// A preemption landed inside a published rseq critical section and
    /// the thread was redirected to the descriptor's abort handler.
    RseqAbort {
        /// The aborted thread.
        thread: u32,
        /// PC at preemption.
        from: u32,
        /// The abort handler it was redirected to.
        abort_ip: u32,
        /// Straight-line cycle cost of the window instructions executed
        /// before the abort — the work the abort threw away.
        wasted_cycles: u64,
    },
    /// A blocked or sleeping thread became ready.
    Wake {
        /// The thread.
        thread: u32,
    },
    /// A page fault was serviced.
    PageFault {
        /// The faulting thread.
        thread: u32,
        /// The faulting byte address.
        addr: u32,
    },
    /// The processor idled with nothing runnable.
    Idle {
        /// Idle cycles (the event is emitted when the idle period ends).
        cycles: u64,
    },
}

impl ObsEvent {
    /// The thread the event concerns, if it concerns one.
    pub fn thread(&self) -> Option<u32> {
        match *self {
            ObsEvent::Boot { .. } | ObsEvent::Idle { .. } => None,
            ObsEvent::Spawn { thread }
            | ObsEvent::Dispatch { thread }
            | ObsEvent::SwitchOut { thread, .. }
            | ObsEvent::Rollback { thread, .. }
            | ObsEvent::UserRedirect { thread }
            | ObsEvent::Syscall { thread, .. }
            | ObsEvent::LockAttempt { thread, .. }
            | ObsEvent::SeqRegister { thread, .. }
            | ObsEvent::RseqRegister { thread, .. }
            | ObsEvent::RseqAbort { thread, .. }
            | ObsEvent::Wake { thread }
            | ObsEvent::PageFault { thread, .. } => Some(thread),
        }
    }
}

/// An event with the machine clock at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedObsEvent {
    /// Machine cycles at the event.
    pub clock: u64,
    /// What happened.
    pub event: ObsEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_attribution() {
        assert_eq!(ObsEvent::Boot { threads: 1 }.thread(), None);
        assert_eq!(ObsEvent::Idle { cycles: 5 }.thread(), None);
        assert_eq!(ObsEvent::Dispatch { thread: 3 }.thread(), Some(3));
        assert_eq!(
            ObsEvent::Rollback {
                thread: 2,
                from: 9,
                to: 5,
                wasted_cycles: 4
            }
            .thread(),
            Some(2)
        );
    }

    #[test]
    fn switch_reason_labels_are_distinct() {
        let all = [
            SwitchReason::Quantum,
            SwitchReason::Yield,
            SwitchReason::Block,
            SwitchReason::Sleep,
            SwitchReason::PageFault,
            SwitchReason::Exit,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
