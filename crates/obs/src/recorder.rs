//! The [`Recorder`] trait and the standard [`Recording`] implementation.

use crate::{Metrics, ObsEvent, Telemetry, TimedObsEvent};

/// A sink for structured observability events.
///
/// The kernel calls [`Recorder::record`] once per event with the machine
/// clock at which it occurred. Events arrive in nondecreasing clock order.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, clock: u64, event: &ObsEvent);
}

/// The standard recorder: always aggregates [`Metrics`], and optionally
/// keeps the full event stream for the timeline exporters.
///
/// `Clone` and `Debug` are deliberate: the kernel is cloneable (the model
/// checker snapshots it per decision point), so anything it owns must be
/// too.
#[derive(Debug, Clone)]
pub struct Recording {
    capture_events: bool,
    events: Vec<TimedObsEvent>,
    metrics: Metrics,
    telemetry: Option<Telemetry>,
}

impl Recording {
    /// Creates a recorder. With `capture_events` false only the aggregate
    /// metrics are kept — constant memory, suitable for long runs; with it
    /// true every event is retained for export.
    pub fn new(capture_events: bool) -> Recording {
        Recording {
            capture_events,
            events: Vec::new(),
            metrics: Metrics::default(),
            telemetry: None,
        }
    }

    /// Attaches a streaming [`Telemetry`] aggregate. Subsequent events
    /// are forwarded to it (quantum utilization, boundary flushes) in
    /// addition to the metrics fold. Idempotent: an existing aggregate
    /// is never replaced.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if self.telemetry.is_none() {
            self.telemetry = Some(telemetry);
        }
    }

    /// The attached telemetry aggregate, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Mutable access for the kernel's drain sites.
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_mut()
    }

    /// Detaches and returns the telemetry aggregate.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    /// The captured event stream (empty unless constructed with
    /// `capture_events`).
    pub fn events(&self) -> &[TimedObsEvent] {
        &self.events
    }

    /// The aggregated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the recording, returning the event stream.
    pub fn into_events(self) -> Vec<TimedObsEvent> {
        self.events
    }
}

impl Recorder for Recording {
    fn record(&mut self, clock: u64, event: &ObsEvent) {
        self.metrics.apply(clock, event);
        if let Some(t) = &mut self.telemetry {
            t.on_event(clock, event);
        }
        if self.capture_events {
            self.events.push(TimedObsEvent {
                clock,
                event: *event,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchReason;

    #[test]
    fn metrics_only_mode_keeps_no_events() {
        let mut r = Recording::new(false);
        r.record(10, &ObsEvent::Dispatch { thread: 0 });
        r.record(20, &ObsEvent::Syscall { thread: 0, num: 3 });
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().dispatches, 1);
        assert_eq!(r.metrics().syscalls, 1);
    }

    #[test]
    fn capture_mode_keeps_the_stream_in_order() {
        let mut r = Recording::new(true);
        r.record(10, &ObsEvent::Dispatch { thread: 1 });
        r.record(
            25,
            &ObsEvent::SwitchOut {
                thread: 1,
                reason: SwitchReason::Quantum,
                inside_sequence: false,
            },
        );
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].clock, 10);
        assert_eq!(events[1].clock, 25);
        assert_eq!(r.metrics().quantum_expiries, 1);
        assert_eq!(r.clone().into_events().len(), 2);
    }
}
