//! A minimal recursive-descent JSON parser.
//!
//! The workspace has no serde (the build environment is offline), and the
//! trace exporter writes its JSON by hand — so the schema validator needs
//! an independent reader to check that output against. This is that
//! reader: strict JSON, no extensions, objects as ordered pairs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error, including trailing garbage after the top-level value.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_owned());
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte '{}' at {pos}", other as char)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogates are not paired up — the exporter never
                        // emits non-BMP text; map them to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Collect the full UTF-8 sequence starting at b.
                let width = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let start = *pos - 1;
                let end = start + width;
                let chunk = bytes
                    .get(start..end)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{'single': 1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), Json::Obj(vec![]));
    }
}
