//! The streaming telemetry registry: sharded counters, per-lock latency
//! histograms, and scheduler gauges, aggregated incrementally at
//! scheduling boundaries.
//!
//! Where [`crate::lock_profile`] replays a *complete* buffered access log
//! after the run, [`Telemetry`] consumes the same value transitions
//! *incrementally* as the kernel drains the machine's access log at each
//! scheduling boundary, folding every completed wait and hold interval
//! into a fixed-size [`Log2Histogram`] per lock. Memory is
//! O(buckets × locks) plus O(threads) counter shards — never O(events) —
//! so the layer survives the 10k-thread lock-server scenario that the
//! buffered exporters cannot.
//!
//! The state machine mirrors `lock_profile`'s transition rules exactly
//! (RMW of 0 = acquire, RMW/load of nonzero = contended probe, store of
//! 0 = release, nonzero committing store = optimistic acquire), extended
//! with per-thread attribution: the kernel drains accesses while the
//! thread that performed them is still current, so every transition
//! carries its thread. [`exact_lock_replay`] recomputes the same
//! intervals from a complete buffered stream; the differential tests pin
//! the streaming histograms byte-for-byte against histograms fed from
//! that exact replay.

use ras_machine::{AccessKind, MemAccess};

use crate::hist::Log2Histogram;
use crate::{ObsEvent, TimedObsEvent};

/// Handle to a named counter in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a named gauge in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// A monotonically increasing counter sharded per guest thread.
///
/// Each thread increments its own shard; shards fold into the aggregate
/// at scheduling boundaries ([`ShardedCounter::flush`]), so the hot
/// update path is a single indexed add and reads never race with
/// updates — the simulator is single-threaded on the host, but the
/// sharding keeps per-thread attribution available for free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedCounter {
    shards: Vec<u64>,
    folded: u64,
}

impl ShardedCounter {
    /// Adds `delta` to `thread`'s shard, growing the shard vector on
    /// first sight of a thread.
    pub fn add(&mut self, thread: u32, delta: u64) {
        let i = thread as usize;
        if i >= self.shards.len() {
            self.shards.resize(i + 1, 0);
        }
        self.shards[i] += delta;
    }

    /// Folds all shards into the aggregate. Idempotent between updates.
    pub fn flush(&mut self) {
        for s in &mut self.shards {
            self.folded += *s;
            *s = 0;
        }
    }

    /// Folds only `thread`'s shard — the scheduling-boundary fold, where
    /// the switched-out thread is the only one that could have updated a
    /// shard since the previous boundary. O(1) instead of O(threads).
    pub fn flush_thread(&mut self, thread: u32) {
        if let Some(s) = self.shards.get_mut(thread as usize) {
            self.folded += *s;
            *s = 0;
        }
    }

    /// The aggregate value, including not-yet-folded shards.
    pub fn value(&self) -> u64 {
        self.folded + self.shards.iter().sum::<u64>()
    }
}

/// A named counter/gauge registry with per-thread counter sharding.
///
/// Names are registered once ([`Registry::counter`] / [`Registry::gauge`]
/// find-or-create) and updated through the returned handles; exporters
/// iterate in registration order, which is deterministic because the
/// telemetry layer registers everything up front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: Vec<(String, ShardedCounter)>,
    gauges: Vec<(String, u64)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Finds or creates the counter called `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters
            .push((name.to_owned(), ShardedCounter::default()));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `delta` to counter `id` on `thread`'s shard.
    pub fn add(&mut self, id: CounterId, thread: u32, delta: u64) {
        self.counters[id.0].1.add(thread, delta);
    }

    /// Finds or creates the gauge called `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_owned(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets gauge `id` to `value`.
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0].1 = value;
    }

    /// Folds every counter's shards (a scheduling-boundary aggregation).
    pub fn flush(&mut self) {
        for (_, c) in &mut self.counters {
            c.flush();
        }
    }

    /// Folds every counter's shard for `thread` only — what a scheduling
    /// boundary needs, since only the outgoing thread ran since the last
    /// one. [`Registry::counters`] reads through unfolded shards either
    /// way; this keeps the boundary cost independent of thread count.
    pub fn flush_thread(&mut self, thread: u32) {
        for (_, c) in &mut self.counters {
            c.flush_thread(thread);
        }
    }

    /// `(name, value)` for every counter, in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, c)| (n.as_str(), c.value()))
    }

    /// `(name, value)` for every gauge, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

/// Streaming per-lock statistics: wait/hold latency histograms plus the
/// transition-replay state needed to close intervals incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockTelemetry {
    /// The lock word's address.
    pub addr: u32,
    /// Completed wait intervals (first contended probe of a thread's
    /// streak to its acquire), in cycles.
    pub wait: Log2Histogram,
    /// Completed hold intervals (acquire to release), in cycles.
    pub hold: Log2Histogram,
    /// Successful acquisitions (RMW of 0 or committing store).
    pub acquisitions: u64,
    /// Releases (stores of 0 while held).
    pub releases: u64,
    /// Probes that found the lock held (failed RMWs and nonzero loads).
    pub contended_probes: u64,
    holder: Option<u32>,
    held_since: u64,
    contending: Vec<(u32, u64)>,
}

impl LockTelemetry {
    fn new(addr: u32) -> LockTelemetry {
        LockTelemetry {
            addr,
            wait: Log2Histogram::new(),
            hold: Log2Histogram::new(),
            acquisitions: 0,
            releases: 0,
            contended_probes: 0,
            holder: None,
            held_since: 0,
            contending: Vec::new(),
        }
    }

    /// The thread currently inferred to hold the lock, if any.
    pub fn holder(&self) -> Option<u32> {
        self.holder
    }
}

/// Per-thread attribution of lock time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTelemetry {
    /// The thread id.
    pub thread: u32,
    /// Locks this thread acquired.
    pub acquisitions: u64,
    /// Cycles this thread spent between first contended probe and
    /// acquire, summed over all locks.
    pub wait_cycles: u64,
    /// Cycles this thread held locks, summed over all locks.
    pub hold_cycles: u64,
}

/// The streaming telemetry aggregate the kernel feeds through the
/// `Option<Box<Recording>>` seam.
///
/// Constructed with the set of lock-word addresses to watch; all other
/// accesses are ignored with a binary-search miss. Three inputs arrive:
///
/// * [`Telemetry::observe`] — one drained access with the thread that
///   performed it (the kernel drains at every return from the machine,
///   while the performing thread is still current);
/// * [`Telemetry::on_event`] — the structured event stream, used for
///   quantum-utilization sampling and boundary flushes;
/// * [`Telemetry::sample_runqueue`] — ready-queue depth at dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    locks: Vec<LockTelemetry>,
    /// The watched addresses are exactly every word in the range — the
    /// "array of lock words" layout — so the per-access lookup is an
    /// offset computation instead of a binary search.
    dense: bool,
    threads: Vec<ThreadTelemetry>,
    /// Ready-queue depth sampled at every dispatch.
    pub runqueue_depth: Log2Histogram,
    /// Cycles between a thread's dispatch and its switch-out — quantum
    /// utilization (compare against the configured quantum).
    pub quantum_used: Log2Histogram,
    registry: Registry,
    acquisitions_id: CounterId,
    releases_id: CounterId,
    contended_id: CounterId,
    wait_cycles_id: CounterId,
    hold_cycles_id: CounterId,
    runqueue_gauge: GaugeId,
    slice_start: Option<(u32, u64)>,
    boundary_flushes: u64,
    capture_raw: bool,
    raw: Vec<(u32, MemAccess)>,
}

impl Telemetry {
    /// A telemetry aggregate watching `lock_addrs` (deduplicated and
    /// sorted internally).
    pub fn new(lock_addrs: &[u32]) -> Telemetry {
        let mut addrs: Vec<u32> = lock_addrs.to_vec();
        addrs.sort_unstable();
        addrs.dedup();
        let mut registry = Registry::new();
        let acquisitions_id = registry.counter("lock_acquisitions_total");
        let releases_id = registry.counter("lock_releases_total");
        let contended_id = registry.counter("lock_contended_probes_total");
        let wait_cycles_id = registry.counter("lock_wait_cycles_total");
        let hold_cycles_id = registry.counter("lock_hold_cycles_total");
        let runqueue_gauge = registry.gauge("runqueue_depth");
        let dense = !addrs.is_empty()
            && addrs
                .iter()
                .enumerate()
                .all(|(i, &a)| a == addrs[0] + 4 * i as u32);
        Telemetry {
            locks: addrs.into_iter().map(LockTelemetry::new).collect(),
            dense,
            threads: Vec::new(),
            runqueue_depth: Log2Histogram::new(),
            quantum_used: Log2Histogram::new(),
            registry,
            acquisitions_id,
            releases_id,
            contended_id,
            wait_cycles_id,
            hold_cycles_id,
            runqueue_gauge,
            slice_start: None,
            boundary_flushes: 0,
            capture_raw: false,
            raw: Vec::new(),
        }
    }

    /// Also retain every watched `(thread, access)` pair. Test-only
    /// ground truth for [`exact_lock_replay`]; defeats the bounded-memory
    /// guarantee, so production paths leave it off.
    pub fn set_capture_raw(&mut self, on: bool) {
        self.capture_raw = on;
    }

    /// Consumes one drained access performed by `thread`, replaying the
    /// lock-word value transition if the address is watched.
    pub fn observe(&mut self, thread: u32, a: &MemAccess) {
        let i = if self.dense {
            let off = a.addr.wrapping_sub(self.locks[0].addr);
            if off >= 4 * self.locks.len() as u32 || off & 3 != 0 {
                return;
            }
            (off >> 2) as usize
        } else {
            match self.locks.binary_search_by_key(&a.addr, |l| l.addr) {
                Ok(i) => i,
                Err(_) => return,
            }
        };
        if self.capture_raw {
            self.raw.push((thread, *a));
        }
        let clock = a.clock;
        match a.kind {
            AccessKind::Rmw => {
                if a.value == 0 {
                    self.acquire(i, thread, clock);
                } else {
                    self.probe(i, thread, clock);
                }
            }
            AccessKind::Load => {
                if a.value != 0 {
                    self.probe(i, thread, clock);
                }
            }
            AccessKind::Store => {
                if a.value == 0 {
                    self.release(i, clock);
                } else if self.locks[i].holder.is_none() {
                    // Committing store of an optimistic sequence: the
                    // acquire the kernel never saw as an RMW. A nonzero
                    // store while the lock is held is the unconditional
                    // overwrite of a failed Test-And-Set instead — the
                    // attempt was already counted by the load that saw
                    // the lock taken, and ownership does not change.
                    self.acquire(i, thread, clock);
                }
            }
        }
    }

    fn acquire(&mut self, i: usize, thread: u32, clock: u64) {
        let lock = &mut self.locks[i];
        lock.acquisitions += 1;
        if let Some(pos) = lock.contending.iter().position(|&(t, _)| t == thread) {
            let (_, since) = lock.contending.swap_remove(pos);
            let waited = clock - since;
            lock.wait.record(waited);
            self.thread_mut(thread).wait_cycles += waited;
            self.registry.add(self.wait_cycles_id, thread, waited);
        } else {
            // Uncontended fast path: zero wait, recorded so percentiles
            // reflect the full acquisition population.
            lock.wait.record(0);
        }
        let lock = &mut self.locks[i];
        lock.holder = Some(thread);
        lock.held_since = clock;
        self.thread_mut(thread).acquisitions += 1;
        self.registry.add(self.acquisitions_id, thread, 1);
    }

    fn probe(&mut self, i: usize, thread: u32, clock: u64) {
        let lock = &mut self.locks[i];
        lock.contended_probes += 1;
        if !lock.contending.iter().any(|&(t, _)| t == thread) {
            lock.contending.push((thread, clock));
        }
        self.registry.add(self.contended_id, thread, 1);
    }

    fn release(&mut self, i: usize, clock: u64) {
        let lock = &mut self.locks[i];
        let Some(holder) = lock.holder.take() else {
            return;
        };
        let held = clock - lock.held_since;
        lock.hold.record(held);
        lock.releases += 1;
        self.thread_mut(holder).hold_cycles += held;
        self.registry.add(self.hold_cycles_id, holder, held);
        self.registry.add(self.releases_id, holder, 1);
    }

    fn thread_mut(&mut self, thread: u32) -> &mut ThreadTelemetry {
        let i = thread as usize;
        if i >= self.threads.len() {
            // Stamp ids on the newly created tail only: restamping every
            // slot per growth was O(threads²) across a 10k-client spawn
            // wave.
            let old_len = self.threads.len();
            self.threads.resize_with(i + 1, ThreadTelemetry::default);
            for (t, slot) in self.threads.iter_mut().enumerate().skip(old_len) {
                slot.thread = t as u32;
            }
        }
        &mut self.threads[i]
    }

    /// Folds one structured event: dispatch opens a quantum-utilization
    /// interval, switch-out closes it and triggers the boundary flush
    /// that folds counter shards into their aggregates.
    pub fn on_event(&mut self, clock: u64, event: &ObsEvent) {
        match event {
            ObsEvent::Dispatch { thread } => {
                self.slice_start = Some((*thread, clock));
            }
            ObsEvent::SwitchOut { thread, .. } => {
                if let Some((t, since)) = self.slice_start.take() {
                    if t == *thread {
                        self.quantum_used.record(clock - since);
                    }
                }
                self.registry.flush_thread(*thread);
                self.boundary_flushes += 1;
            }
            _ => {}
        }
    }

    /// Records the ready-queue depth observed at a dispatch.
    pub fn sample_runqueue(&mut self, depth: u64) {
        self.runqueue_depth.record(depth);
        self.registry.set_gauge(self.runqueue_gauge, depth);
    }

    /// Per-lock statistics, sorted by address.
    pub fn locks(&self) -> &[LockTelemetry] {
        &self.locks
    }

    /// Per-thread attribution, indexed by thread id.
    pub fn threads(&self) -> &[ThreadTelemetry] {
        &self.threads
    }

    /// The counter/gauge registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// How many scheduling-boundary flushes have run.
    pub fn boundary_flushes(&self) -> u64 {
        self.boundary_flushes
    }

    /// The retained raw stream (empty unless
    /// [`Telemetry::set_capture_raw`] was on).
    pub fn raw(&self) -> &[(u32, MemAccess)] {
        &self.raw
    }
}

/// Exact per-lock intervals recomputed offline from a complete buffered
/// `(thread, access)` stream — the ground truth the streaming histograms
/// are differentially pinned against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExactLockStats {
    /// The lock word's address.
    pub addr: u32,
    /// Every completed wait interval, in stream order.
    pub waits: Vec<u64>,
    /// Every completed hold interval, in stream order.
    pub holds: Vec<u64>,
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Releases.
    pub releases: u64,
    /// Contended probes.
    pub contended_probes: u64,
}

/// Batch-replays a complete buffered `(thread, access)` stream with the
/// same transition rules as [`Telemetry::observe`], but keeping every
/// individual interval instead of bucketing. Feeding the returned
/// intervals into a fresh [`Log2Histogram`] must reproduce the streaming
/// histogram byte-for-byte; sorting them gives exact percentiles the
/// bucketed answers must dominate within one bucket.
pub fn exact_lock_replay(raw: &[(u32, MemAccess)], lock_addrs: &[u32]) -> Vec<ExactLockStats> {
    let mut addrs: Vec<u32> = lock_addrs.to_vec();
    addrs.sort_unstable();
    addrs.dedup();
    let mut out: Vec<ExactLockStats> = addrs
        .iter()
        .map(|&addr| ExactLockStats {
            addr,
            ..ExactLockStats::default()
        })
        .collect();
    let mut holders: Vec<Option<(u32, u64)>> = vec![None; addrs.len()];
    let mut contending: Vec<Vec<(u32, u64)>> = vec![Vec::new(); addrs.len()];
    for &(thread, a) in raw {
        let Ok(i) = addrs.binary_search(&a.addr) else {
            continue;
        };
        let acquires = match a.kind {
            AccessKind::Rmw => a.value == 0,
            // A nonzero store acquires only when the lock is free: while
            // held it is a failed Test-And-Set's unconditional overwrite.
            AccessKind::Store => a.value != 0 && holders[i].is_none(),
            AccessKind::Load => false,
        };
        let releases = a.kind == AccessKind::Store && a.value == 0;
        let probes = (a.kind == AccessKind::Rmw || a.kind == AccessKind::Load) && a.value != 0;
        if acquires {
            out[i].acquisitions += 1;
            match contending[i].iter().position(|&(t, _)| t == thread) {
                Some(pos) => {
                    let (_, since) = contending[i].swap_remove(pos);
                    out[i].waits.push(a.clock - since);
                }
                None => out[i].waits.push(0),
            }
            holders[i] = Some((thread, a.clock));
        } else if releases {
            if let Some((_, since)) = holders[i].take() {
                out[i].holds.push(a.clock - since);
                out[i].releases += 1;
            }
        } else if probes {
            out[i].contended_probes += 1;
            if !contending[i].iter().any(|&(t, _)| t == thread) {
                contending[i].push((thread, a.clock));
            }
        }
    }
    out
}

/// Replays a captured event stream into a fresh [`Telemetry`]'s
/// event-driven channels (quantum utilization). Lets tests rebuild the
/// scheduler histograms from a buffered stream and compare with the
/// streamed aggregate.
pub fn replay_events(telemetry: &mut Telemetry, events: &[TimedObsEvent]) {
    for e in events {
        telemetry.on_event(e.clock, &e.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchReason;

    fn acc(clock: u64, kind: AccessKind, addr: u32, value: u32) -> MemAccess {
        MemAccess {
            pc: 0,
            addr,
            kind,
            clock,
            atomic: false,
            value,
        }
    }

    const LOCK: u32 = 64;

    #[test]
    fn sharded_counter_folds_at_flush() {
        let mut c = ShardedCounter::default();
        c.add(0, 3);
        c.add(5, 2);
        assert_eq!(c.value(), 5);
        c.flush();
        assert_eq!(c.value(), 5);
        c.add(1, 1);
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn registry_find_or_create_is_stable() {
        let mut r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        assert_eq!(a, b);
        r.add(a, 0, 7);
        assert_eq!(r.counters().collect::<Vec<_>>(), vec![("ops", 7)]);
        let g = r.gauge("depth");
        r.set_gauge(g, 42);
        assert_eq!(r.gauges().collect::<Vec<_>>(), vec![("depth", 42)]);
    }

    #[test]
    fn contended_handoff_attributes_wait_and_hold() {
        let mut t = Telemetry::new(&[LOCK]);
        // T0 acquires instantly, T1 probes at 10 and 20, T0 releases at
        // 30, T1 acquires at 32, releases at 50.
        t.observe(0, &acc(0, AccessKind::Rmw, LOCK, 0));
        t.observe(1, &acc(10, AccessKind::Rmw, LOCK, 1));
        t.observe(1, &acc(20, AccessKind::Load, LOCK, 1));
        t.observe(0, &acc(30, AccessKind::Store, LOCK, 0));
        t.observe(1, &acc(32, AccessKind::Rmw, LOCK, 0));
        t.observe(1, &acc(50, AccessKind::Store, LOCK, 0));
        let lock = &t.locks()[0];
        assert_eq!(lock.acquisitions, 2);
        assert_eq!(lock.releases, 2);
        assert_eq!(lock.contended_probes, 2);
        assert_eq!(lock.wait.count(), 2);
        // T1 waited 32 - 10 = 22 cycles; T0 waited 0.
        assert_eq!(t.threads()[1].wait_cycles, 22);
        assert_eq!(t.threads()[0].hold_cycles, 30);
        assert_eq!(t.threads()[1].hold_cycles, 18);
        let totals: Vec<(&str, u64)> = t.registry().counters().collect();
        assert!(totals.contains(&("lock_acquisitions_total", 2)));
        assert!(totals.contains(&("lock_wait_cycles_total", 22)));
        assert!(totals.contains(&("lock_hold_cycles_total", 48)));
    }

    #[test]
    fn committing_store_counts_as_optimistic_acquire() {
        let mut t = Telemetry::new(&[LOCK]);
        t.observe(2, &acc(5, AccessKind::Store, LOCK, 1));
        t.observe(2, &acc(25, AccessKind::Store, LOCK, 0));
        let lock = &t.locks()[0];
        assert_eq!(lock.acquisitions, 1);
        assert_eq!(lock.releases, 1);
        assert_eq!(lock.hold.count(), 1);
        assert_eq!(t.threads()[2].hold_cycles, 20);
    }

    #[test]
    fn unwatched_addresses_are_ignored() {
        let mut t = Telemetry::new(&[LOCK]);
        t.observe(0, &acc(0, AccessKind::Rmw, 128, 0));
        t.observe(0, &acc(1, AccessKind::Store, 128, 0));
        assert_eq!(t.locks()[0].acquisitions, 0);
    }

    #[test]
    fn streaming_matches_exact_replay_on_a_synthetic_stream() {
        // A deterministic pseudo-random interleaving over two locks.
        let locks = [64u32, 68];
        let mut stream: Vec<(u32, MemAccess)> = Vec::new();
        let mut state = 0x5eedu64;
        let mut held = [false; 2];
        let mut clock = 0;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let thread = ((state >> 33) % 3) as u32;
            let li = ((state >> 40) % 2) as usize;
            clock += 1 + (state >> 50) % 13;
            if held[li] {
                if state >> 60 < 6 {
                    stream.push((thread, acc(clock, AccessKind::Rmw, locks[li], 1)));
                } else {
                    stream.push((thread, acc(clock, AccessKind::Store, locks[li], 0)));
                    held[li] = false;
                }
            } else {
                stream.push((thread, acc(clock, AccessKind::Rmw, locks[li], 0)));
                held[li] = true;
            }
        }
        let mut streaming = Telemetry::new(&locks);
        for &(thread, a) in &stream {
            streaming.observe(thread, &a);
        }
        let exact = exact_lock_replay(&stream, &locks);
        for (lt, ex) in streaming.locks().iter().zip(exact.iter()) {
            assert_eq!(lt.addr, ex.addr);
            assert_eq!(lt.acquisitions, ex.acquisitions);
            assert_eq!(lt.releases, ex.releases);
            assert_eq!(lt.contended_probes, ex.contended_probes);
            let mut wait = Log2Histogram::new();
            for &w in &ex.waits {
                wait.record(w);
            }
            let mut hold = Log2Histogram::new();
            for &h in &ex.holds {
                hold.record(h);
            }
            assert_eq!(lt.wait, wait, "wait histograms diverge at {:#x}", lt.addr);
            assert_eq!(lt.hold, hold, "hold histograms diverge at {:#x}", lt.addr);
            assert_eq!(lt.wait.percentile_summary(), wait.percentile_summary());
        }
    }

    #[test]
    fn quantum_utilization_and_boundary_flushes() {
        let mut t = Telemetry::new(&[]);
        t.on_event(100, &ObsEvent::Dispatch { thread: 0 });
        t.on_event(
            350,
            &ObsEvent::SwitchOut {
                thread: 0,
                reason: SwitchReason::Quantum,
                inside_sequence: false,
            },
        );
        assert_eq!(t.quantum_used.count(), 1);
        assert_eq!(t.quantum_used.sum(), 250);
        assert_eq!(t.boundary_flushes(), 1);
        t.sample_runqueue(7);
        assert_eq!(t.runqueue_depth.count(), 1);
        assert_eq!(
            t.registry().gauges().collect::<Vec<_>>(),
            vec![("runqueue_depth", 7)]
        );
    }
}
