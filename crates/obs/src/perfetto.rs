//! Chrome/Perfetto trace-event JSON export and schema validation.
//!
//! The exporter writes the classic Chrome trace-event format (the
//! `{"traceEvents": [...]}` JSON Perfetto's UI and `chrome://tracing`
//! both load): one track per thread, a `B`/`E` slice per scheduling
//! interval, instants for rollbacks, lock probes, syscalls, and faults,
//! and an `X` complete-event track for processor idle time. Timestamps
//! are microseconds of simulated time (cycles divided by the clock rate).
//!
//! [`validate_chrome_trace`] re-reads the output with this crate's own
//! JSON parser and checks the structural schema — required fields per
//! phase, balanced `B`/`E` nesting per track — so tests and CI can gate
//! on well-formedness without external tools.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Json, ObsEvent, TimedObsEvent};

/// The synthetic track id used for processor-idle slices.
pub const IDLE_TID: u32 = 999_999;

const PID: u32 = 1;

/// Serializes a recorded event stream as Chrome trace-event JSON,
/// returned as one `String`. Convenience wrapper over
/// [`chrome_trace_to`] for small traces and tests; large runs should
/// stream straight to a writer instead.
pub fn chrome_trace(events: &[TimedObsEvent], cycles_per_us: f64, process_name: &str) -> String {
    let mut buf = Vec::new();
    chrome_trace_to(&mut buf, events, cycles_per_us, process_name)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Streams a recorded event stream as Chrome trace-event JSON into `w`,
/// one trace event per chunk — the whole document is never materialized,
/// so export memory is O(1) in the number of events. Returns the number
/// of trace events written.
///
/// `cycles_per_us` converts the machine clock to trace timestamps — pass
/// the CPU profile's MHz (cycles per microsecond). `process_name` labels
/// the process track, e.g. `"ras-registered × counter"`.
///
/// # Errors
///
/// Propagates the first I/O error from `w`.
pub fn chrome_trace_to<W: std::io::Write>(
    w: &mut W,
    events: &[TimedObsEvent],
    cycles_per_us: f64,
    process_name: &str,
) -> std::io::Result<usize> {
    let ts = |clock: u64| clock as f64 / cycles_per_us.max(1e-9);
    let mut out = Emitter { w, written: 0 };
    out.line(&format!(
        r#"{{"name":"process_name","ph":"M","pid":{PID},"tid":0,"args":{{"name":"{}"}}}}"#,
        escape(process_name)
    ))?;
    let mut named: HashMap<u32, ()> = HashMap::new();
    let mut open: HashMap<u32, bool> = HashMap::new();
    let mut last_clock = 0u64;
    fn name_thread<W: std::io::Write>(
        out: &mut Emitter<'_, W>,
        named: &mut HashMap<u32, ()>,
        tid: u32,
    ) -> std::io::Result<()> {
        if named.insert(tid, ()).is_none() {
            let label = if tid == IDLE_TID {
                "idle".to_owned()
            } else {
                format!("thread {tid}")
            };
            out.line(&format!(
                r#"{{"name":"thread_name","ph":"M","pid":{PID},"tid":{tid},"args":{{"name":"{label}"}}}}"#
            ))?;
        }
        Ok(())
    }
    for e in events {
        last_clock = last_clock.max(e.clock);
        let t = ts(e.clock);
        if let Some(tid) = e.event.thread() {
            name_thread(&mut out, &mut named, tid)?;
        }
        match e.event {
            ObsEvent::Boot { threads } => {
                out.line(&format!(
                    r#"{{"name":"boot","ph":"i","s":"p","ts":{t:.3},"pid":{PID},"tid":0,"args":{{"threads":{threads}}}}}"#
                ))?;
            }
            ObsEvent::Spawn { thread } => {
                out.line(&instant(t, thread, "spawn", ""))?;
            }
            ObsEvent::Dispatch { thread } => {
                // Defensive: close a still-open slice rather than nesting.
                if open.insert(thread, true) == Some(true) {
                    out.line(&slice_end(t, thread, ""))?;
                }
                out.line(&format!(
                    r#"{{"name":"running","ph":"B","ts":{t:.3},"pid":{PID},"tid":{thread}}}"#
                ))?;
            }
            ObsEvent::SwitchOut {
                thread,
                reason,
                inside_sequence,
            } => {
                if open.insert(thread, false) == Some(true) {
                    let args = format!(
                        r#""reason":"{}","inside_sequence":{inside_sequence}"#,
                        reason.label()
                    );
                    out.line(&slice_end(t, thread, &args))?;
                }
            }
            ObsEvent::Rollback {
                thread,
                from,
                to,
                wasted_cycles,
            } => {
                out.line(&instant(
                    t,
                    thread,
                    "rollback",
                    &format!(r#""from":{from},"to":{to},"wasted_cycles":{wasted_cycles}"#),
                ))?;
            }
            ObsEvent::UserRedirect { thread } => {
                out.line(&instant(t, thread, "user-redirect", ""))?;
            }
            ObsEvent::Syscall { thread, num } => {
                out.line(&instant(t, thread, "syscall", &format!(r#""num":{num}"#)))?;
            }
            ObsEvent::LockAttempt {
                thread,
                addr,
                acquired,
            } => {
                out.line(&instant(
                    t,
                    thread,
                    "tas",
                    &format!(r#""addr":{addr},"acquired":{acquired}"#),
                ))?;
            }
            ObsEvent::SeqRegister { thread, start, len } => {
                out.line(&instant(
                    t,
                    thread,
                    "ras-register",
                    &format!(r#""start":{start},"len":{len}"#),
                ))?;
            }
            ObsEvent::RseqRegister { thread, area } => {
                out.line(&instant(
                    t,
                    thread,
                    "rseq-register",
                    &format!(r#""area":{area}"#),
                ))?;
            }
            ObsEvent::RseqAbort {
                thread,
                from,
                abort_ip,
                wasted_cycles,
            } => {
                out.line(&instant(
                    t,
                    thread,
                    "rseq-abort",
                    &format!(
                        r#""from":{from},"abort_ip":{abort_ip},"wasted_cycles":{wasted_cycles}"#
                    ),
                ))?;
            }
            ObsEvent::Wake { thread } => {
                out.line(&instant(t, thread, "wake", ""))?;
            }
            ObsEvent::PageFault { thread, addr } => {
                out.line(&instant(
                    t,
                    thread,
                    "page-fault",
                    &format!(r#""addr":{addr}"#),
                ))?;
            }
            ObsEvent::Idle { cycles } => {
                name_thread(&mut out, &mut named, IDLE_TID)?;
                let start = ts(e.clock.saturating_sub(cycles));
                let dur = ts(e.clock) - start;
                out.line(&format!(
                    r#"{{"name":"idle","ph":"X","ts":{start:.3},"dur":{dur:.3},"pid":{PID},"tid":{IDLE_TID}}}"#
                ))?;
            }
        }
    }
    // Close any slice still open at the end of the recording so the
    // B/E nesting balances.
    let t = ts(last_clock);
    let mut dangling: Vec<u32> = open
        .into_iter()
        .filter_map(|(tid, is_open)| is_open.then_some(tid))
        .collect();
    dangling.sort_unstable();
    for tid in dangling {
        out.line(&slice_end(t, tid, r#""reason":"end-of-recording""#))?;
    }
    out.finish()
}

/// Write-as-you-drain chunk writer: the opening brace goes out before
/// the first event, each event is one write, commas are emitted as
/// *prefixes* of the following line so no lookahead buffer is needed.
struct Emitter<'w, W: std::io::Write> {
    w: &'w mut W,
    written: usize,
}

impl<W: std::io::Write> Emitter<'_, W> {
    fn line(&mut self, event: &str) -> std::io::Result<()> {
        if self.written == 0 {
            self.w.write_all(b"{\"traceEvents\":[\n")?;
        } else {
            self.w.write_all(b",\n")?;
        }
        self.w.write_all(event.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    fn finish(self) -> std::io::Result<usize> {
        if self.written == 0 {
            self.w.write_all(b"{\"traceEvents\":[\n")?;
        }
        self.w.write_all(b"\n]}\n")?;
        Ok(self.written)
    }
}

fn instant(ts: f64, tid: u32, name: &str, args: &str) -> String {
    let args = if args.is_empty() {
        String::new()
    } else {
        format!(r#","args":{{{args}}}"#)
    };
    format!(r#"{{"name":"{name}","ph":"i","s":"t","ts":{ts:.3},"pid":{PID},"tid":{tid}{args}}}"#)
}

fn slice_end(ts: f64, tid: u32, args: &str) -> String {
    let args = if args.is_empty() {
        String::new()
    } else {
        format!(r#","args":{{{args}}}"#)
    };
    format!(r#"{{"name":"running","ph":"E","ts":{ts:.3},"pid":{PID},"tid":{tid}{args}}}"#)
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Summary of a validated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events.
    pub events: usize,
    /// Completed `B`/`E` slice pairs.
    pub slices: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
}

/// Parses `text` as Chrome trace-event JSON and checks the structural
/// schema: a `traceEvents` array whose entries carry the fields their
/// phase requires, with `B`/`E` slices balanced per track.
///
/// # Errors
///
/// Returns a description of the first schema violation (or JSON syntax
/// error).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut depth: HashMap<(u64, u64), i64> = HashMap::new();
    let mut slices = 0usize;
    let mut instants = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = e
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        if ph != "M" {
            let ts = e
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing ts"))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("event {i}: bad ts {ts}"));
            }
        }
        match ph {
            "M" => {}
            "B" => *depth.entry((pid, tid)).or_insert(0) += 1,
            "E" => {
                let d = depth.entry((pid, tid)).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: E without matching B on tid {tid}"));
                }
                slices += 1;
            }
            "i" | "I" => instants += 1,
            "X" => {
                e.get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                slices += 1;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    if let Some(((_, tid), d)) = depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!("unbalanced slices on tid {tid}: depth {d}"));
    }
    Ok(TraceSummary {
        events: events.len(),
        slices,
        instants,
        tracks: depth.len(),
    })
}

fn parse(text: &str) -> Result<Json, String> {
    crate::parse_json(text).map_err(|e| format!("invalid JSON: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwitchReason;

    fn sample_events() -> Vec<TimedObsEvent> {
        let ev = |clock, event| TimedObsEvent { clock, event };
        vec![
            ev(0, ObsEvent::Boot { threads: 1 }),
            ev(5, ObsEvent::Spawn { thread: 1 }),
            ev(10, ObsEvent::Dispatch { thread: 1 }),
            ev(
                20,
                ObsEvent::SeqRegister {
                    thread: 1,
                    start: 4,
                    len: 3,
                },
            ),
            ev(
                40,
                ObsEvent::SwitchOut {
                    thread: 1,
                    reason: SwitchReason::Quantum,
                    inside_sequence: true,
                },
            ),
            ev(
                40,
                ObsEvent::Rollback {
                    thread: 1,
                    from: 6,
                    to: 4,
                    wasted_cycles: 2,
                },
            ),
            ev(
                42,
                ObsEvent::RseqRegister {
                    thread: 1,
                    area: 96,
                },
            ),
            ev(
                43,
                ObsEvent::RseqAbort {
                    thread: 1,
                    from: 11,
                    abort_ip: 20,
                    wasted_cycles: 3,
                },
            ),
            ev(45, ObsEvent::Dispatch { thread: 0 }),
            ev(
                60,
                ObsEvent::LockAttempt {
                    thread: 0,
                    addr: 64,
                    acquired: true,
                },
            ),
            ev(
                70,
                ObsEvent::SwitchOut {
                    thread: 0,
                    reason: SwitchReason::Exit,
                    inside_sequence: false,
                },
            ),
            ev(90, ObsEvent::Idle { cycles: 20 }),
        ]
    }

    #[test]
    fn export_validates_against_the_schema() {
        let json = chrome_trace(&sample_events(), 25.0, "test × counter");
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.slices, 3, "two B/E pairs and one idle X");
        assert!(summary.instants >= 4);
        assert!(json.contains("\"rollback\""));
        assert!(json.contains("\"wasted_cycles\":2"));
        assert!(json.contains("\"rseq-abort\""));
        assert!(json.contains("\"abort_ip\":20"));
        assert!(json.contains("\"rseq-register\""));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn dangling_slices_are_closed() {
        let events = vec![TimedObsEvent {
            clock: 10,
            event: ObsEvent::Dispatch { thread: 0 },
        }];
        let json = chrome_trace(&events, 25.0, "p");
        validate_chrome_trace(&json).unwrap();
        assert!(json.contains("end-of-recording"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let events = vec![TimedObsEvent {
            clock: 50,
            event: ObsEvent::Spawn { thread: 0 },
        }];
        let json = chrome_trace(&events, 25.0, "p");
        assert!(
            json.contains("\"ts\":2.000"),
            "50 cycles at 25 MHz is 2 µs: {json}"
        );
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
        // E without B.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Unbalanced B.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Missing ts.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Unknown phase.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn process_name_is_escaped() {
        let json = chrome_trace(&[], 25.0, "a\"b\\c");
        validate_chrome_trace(&json).unwrap();
        assert!(json.contains(r#"a\"b\\c"#));
    }

    #[test]
    fn streaming_writer_matches_the_string_api() {
        let events = sample_events();
        let via_string = chrome_trace(&events, 25.0, "test × counter");
        let mut buf = Vec::new();
        let written = chrome_trace_to(&mut buf, &events, 25.0, "test × counter").unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), via_string);
        assert!(written > events.len(), "metadata lines add to the count");
    }

    #[test]
    fn streaming_writer_propagates_io_errors() {
        struct Full;
        impl std::io::Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = chrome_trace_to(&mut Full, &sample_events(), 25.0, "p").unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn empty_stream_is_still_valid_json() {
        let mut buf = Vec::new();
        chrome_trace_to(&mut buf, &[], 25.0, "p").unwrap();
        validate_chrome_trace(&String::from_utf8(buf).unwrap()).unwrap();
    }
}
