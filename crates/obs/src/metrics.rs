//! Aggregated counters derived from the event stream.

use std::fmt::Write as _;

use crate::{ObsEvent, SwitchReason};

/// Global and per-thread counters aggregated from the event stream.
///
/// Built incrementally by [`Metrics::apply`]; the [`crate::Recording`]
/// recorder feeds it automatically. All cycle figures are simulated
/// machine cycles.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Threads created while recording (the boot marker's pre-existing
    /// threads are not counted here).
    pub spawns: u64,
    /// Dispatches (a thread given the processor).
    pub dispatches: u64,
    /// Dispatches that actually switched threads.
    pub context_switches: u64,
    /// Timer-quantum expiries (involuntary preemptions).
    pub quantum_expiries: u64,
    /// Suspensions whose PC lay inside a restartable atomic sequence —
    /// the paper's "rare event".
    pub preemptions_inside_sequence: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Straight-line cycles of rolled-back work that had to re-execute.
    pub wasted_cycles: u64,
    /// Syscall traps.
    pub syscalls: u64,
    /// Kernel-emulated Test-And-Set probes.
    pub lock_attempts: u64,
    /// Probes that found the lock held.
    pub lock_contended_attempts: u64,
    /// Cycles threads spent spinning between the first contended probe of
    /// a streak and the acquire that ended it.
    pub lock_contention_cycles: u64,
    /// Sequence registrations.
    pub registrations: u64,
    /// rseq area registrations (`SYS_RSEQ`).
    pub rseq_registrations: u64,
    /// rseq critical sections aborted to their handler on preemption.
    pub rseq_aborts: u64,
    /// Straight-line cycles of rseq window work discarded by aborts.
    pub rseq_wasted_cycles: u64,
    /// User-level recovery redirects.
    pub user_redirects: u64,
    /// Page faults serviced.
    pub page_faults: u64,
    /// Wake-ups delivered.
    pub wakeups: u64,
    /// Cycles the processor idled with nothing runnable.
    pub idle_cycles: u64,
    /// Cycles threads spent dispatched (user code plus the kernel work
    /// charged while they ran).
    pub run_cycles: u64,
    threads: Vec<ThreadMetrics>,
    /// Thread id → slot in `threads` (`u32::MAX` = unseen). Keeps the
    /// per-event lookup O(1); without it every event paid an O(threads)
    /// scan, which at 10k clients dominated the whole telemetry run.
    index: Vec<u32>,
    last_dispatched: Option<u32>,
}

/// Per-thread slice of [`Metrics`].
#[derive(Debug, Clone, Default)]
pub struct ThreadMetrics {
    /// The thread id.
    pub thread: u32,
    /// Dispatches of this thread.
    pub dispatches: u64,
    /// Quantum expiries that hit this thread.
    pub quantum_expiries: u64,
    /// Rollbacks of this thread.
    pub rollbacks: u64,
    /// Wasted re-execution cycles attributed to this thread.
    pub wasted_cycles: u64,
    /// Syscalls this thread made.
    pub syscalls: u64,
    /// Cycles this thread spent dispatched.
    pub run_cycles: u64,
    dispatched_at: Option<u64>,
    contending_since: Option<u64>,
}

impl Metrics {
    /// Folds one event into the counters.
    pub fn apply(&mut self, clock: u64, event: &ObsEvent) {
        match *event {
            ObsEvent::Boot { .. } => {}
            ObsEvent::Spawn { thread } => {
                self.spawns += 1;
                self.thread_mut(thread);
            }
            ObsEvent::Dispatch { thread } => {
                self.dispatches += 1;
                if self.last_dispatched != Some(thread) {
                    self.context_switches += 1;
                }
                self.last_dispatched = Some(thread);
                let t = self.thread_mut(thread);
                t.dispatches += 1;
                t.dispatched_at = Some(clock);
            }
            ObsEvent::SwitchOut {
                thread,
                reason,
                inside_sequence,
            } => {
                if reason == SwitchReason::Quantum {
                    self.quantum_expiries += 1;
                }
                if inside_sequence {
                    self.preemptions_inside_sequence += 1;
                }
                let t = self.thread_mut(thread);
                if reason == SwitchReason::Quantum {
                    t.quantum_expiries += 1;
                }
                if let Some(at) = t.dispatched_at.take() {
                    let ran = clock.saturating_sub(at);
                    t.run_cycles += ran;
                    self.run_cycles += ran;
                }
            }
            ObsEvent::Rollback {
                thread,
                wasted_cycles,
                ..
            } => {
                self.rollbacks += 1;
                self.wasted_cycles += wasted_cycles;
                let t = self.thread_mut(thread);
                t.rollbacks += 1;
                t.wasted_cycles += wasted_cycles;
            }
            ObsEvent::UserRedirect { .. } => self.user_redirects += 1,
            ObsEvent::Syscall { thread, .. } => {
                self.syscalls += 1;
                self.thread_mut(thread).syscalls += 1;
            }
            ObsEvent::LockAttempt {
                thread, acquired, ..
            } => {
                self.lock_attempts += 1;
                if !acquired {
                    self.lock_contended_attempts += 1;
                }
                let t = self.thread_mut(thread);
                let streak_start = if acquired {
                    t.contending_since.take()
                } else {
                    t.contending_since.get_or_insert(clock);
                    None
                };
                if let Some(since) = streak_start {
                    self.lock_contention_cycles += clock.saturating_sub(since);
                }
            }
            ObsEvent::SeqRegister { .. } => self.registrations += 1,
            ObsEvent::RseqRegister { .. } => self.rseq_registrations += 1,
            ObsEvent::RseqAbort {
                thread,
                wasted_cycles,
                ..
            } => {
                self.rseq_aborts += 1;
                self.rseq_wasted_cycles += wasted_cycles;
                let t = self.thread_mut(thread);
                t.rollbacks += 1;
                t.wasted_cycles += wasted_cycles;
            }
            ObsEvent::Wake { .. } => self.wakeups += 1,
            ObsEvent::PageFault { .. } => self.page_faults += 1,
            ObsEvent::Idle { cycles } => self.idle_cycles += cycles,
        }
    }

    /// Per-thread counters, in thread-id order (threads the stream never
    /// mentioned are absent).
    pub fn threads(&self) -> &[ThreadMetrics] {
        &self.threads
    }

    /// One thread's counters, if the stream mentioned it.
    pub fn thread(&self, id: u32) -> Option<&ThreadMetrics> {
        self.threads.iter().find(|t| t.thread == id)
    }

    /// Rollbacks per hundred quantum expiries — the paper's "restarts are
    /// rare" claim as a number. Zero when no quantum ever expired.
    pub fn rollbacks_per_100_quanta(&self) -> f64 {
        if self.quantum_expiries == 0 {
            0.0
        } else {
            self.rollbacks as f64 * 100.0 / self.quantum_expiries as f64
        }
    }

    /// rseq aborts per hundred quantum expiries — the abort-handler
    /// counterpart of [`Metrics::rollbacks_per_100_quanta`]. Zero when no
    /// quantum ever expired.
    pub fn aborts_per_100_quanta(&self) -> f64 {
        if self.quantum_expiries == 0 {
            0.0
        } else {
            self.rseq_aborts as f64 * 100.0 / self.quantum_expiries as f64
        }
    }

    /// The compact text report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "observability metrics");
        let mut line = |k: &str, v: String| {
            let _ = writeln!(s, "  {k:<28} {v}");
        };
        line("dispatches", self.dispatches.to_string());
        line("context switches", self.context_switches.to_string());
        line("quantum expiries", self.quantum_expiries.to_string());
        line(
            "preemptions inside sequence",
            self.preemptions_inside_sequence.to_string(),
        );
        // A zero-quanta run has no meaningful rate: render "n/a" instead
        // of a misleading 0.00 (the accessor returns 0.0 to stay total).
        let per_quanta = |rate: f64| {
            if self.quantum_expiries == 0 {
                "n/a per 100 quanta".to_owned()
            } else {
                format!("{rate:.2} per 100 quanta")
            }
        };
        let per_event = |total: u64, events: u64| {
            if events == 0 {
                "n/a".to_owned()
            } else {
                format!("{:.1}", total as f64 / events as f64)
            }
        };
        line(
            "rollbacks",
            format!(
                "{} ({})",
                self.rollbacks,
                per_quanta(self.rollbacks_per_100_quanta())
            ),
        );
        line(
            "wasted rollback cycles",
            format!(
                "{} (avg {} per rollback)",
                self.wasted_cycles,
                per_event(self.wasted_cycles, self.rollbacks)
            ),
        );
        line("syscalls", self.syscalls.to_string());
        line(
            "lock attempts",
            format!(
                "{} ({} contended, {} contention cycles)",
                self.lock_attempts, self.lock_contended_attempts, self.lock_contention_cycles
            ),
        );
        line("sequence registrations", self.registrations.to_string());
        line("rseq registrations", self.rseq_registrations.to_string());
        line(
            "rseq aborts",
            format!(
                "{} ({})",
                self.rseq_aborts,
                per_quanta(self.aborts_per_100_quanta())
            ),
        );
        line(
            "wasted abort cycles",
            format!(
                "{} (avg {} per abort)",
                self.rseq_wasted_cycles,
                per_event(self.rseq_wasted_cycles, self.rseq_aborts)
            ),
        );
        line("user-level redirects", self.user_redirects.to_string());
        line("page faults", self.page_faults.to_string());
        line("wakeups", self.wakeups.to_string());
        line("run cycles", self.run_cycles.to_string());
        line("idle cycles", self.idle_cycles.to_string());
        let _ = writeln!(s, "per-thread");
        for t in &self.threads {
            let _ = writeln!(
                s,
                "  t{}: dispatches={} quanta={} rollbacks={} wasted={} syscalls={} run_cycles={}",
                t.thread,
                t.dispatches,
                t.quantum_expiries,
                t.rollbacks,
                t.wasted_cycles,
                t.syscalls,
                t.run_cycles
            );
        }
        s
    }

    /// One more section appended to [`Metrics::render`]-style reports:
    /// the model checker's checkpoint-engine counters, when a search ran.
    pub fn render_with_checkpoints(&self, cp: &CheckpointCounters) -> String {
        let mut s = self.render();
        s.push_str(&cp.render());
        s
    }

    fn thread_mut(&mut self, id: u32) -> &mut ThreadMetrics {
        if let Some(&slot) = self.index.get(id as usize) {
            if slot != u32::MAX {
                return &mut self.threads[slot as usize];
            }
        }
        if id as usize >= self.index.len() {
            self.index.resize(id as usize + 1, u32::MAX);
        }
        // First sight of this thread. Ids are dense and first appear in
        // spawn order, so the sorted insert is an append in practice;
        // the slice stays id-sorted either way.
        let pos = self.threads.partition_point(|t| t.thread < id);
        self.threads.insert(
            pos,
            ThreadMetrics {
                thread: id,
                ..ThreadMetrics::default()
            },
        );
        for (offset, t) in self.threads[pos..].iter().enumerate() {
            self.index[t.thread as usize] = (pos + offset) as u32;
        }
        &mut self.threads[pos]
    }
}

/// The model checker's checkpoint-engine counters, in the same shape the
/// other observability counters use so tools can render them alongside
/// [`Metrics`]. These come from the explorer's report (not the event
/// stream — snapshotting is a host-side search mechanism, invisible to
/// the simulated machine), so this is a plain carrier with a renderer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Snapshots taken for sibling branches (undo-log checkpoints, or
    /// kernel clones when checkpointing is off).
    pub checkpoints: u64,
    /// Undo-log entries replayed by restores.
    pub undo_replayed: u64,
    /// Bytes copied into snapshots.
    pub snapshot_bytes: u64,
    /// On-path states deduplicated by the exact-state hash set.
    pub states_deduped: u64,
}

impl CheckpointCounters {
    /// The compact text section, matching [`Metrics::render`]'s layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "checkpoint engine");
        let mut line = |k: &str, v: String| {
            let _ = writeln!(s, "  {k:<28} {v}");
        };
        line("checkpoints", self.checkpoints.to_string());
        line("undo entries replayed", self.undo_replayed.to_string());
        line("snapshot bytes", self.snapshot_bytes.to_string());
        line("states deduped", self.states_deduped.to_string());
        s
    }
}

/// The translation tier's counters, in the same shape the other
/// observability counters use. These come from the machine's
/// [`ras_machine::TranslationStats`] (host-side compilation mechanics,
/// invisible to the simulated architecture), so this is a plain carrier
/// with a renderer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationCounters {
    /// Basic blocks discovered as trace-head candidates.
    pub blocks_discovered: u64,
    /// Trace heads compiled into host closures.
    pub blocks_compiled: u64,
    /// Compiled-trace entries from the dispatcher.
    pub block_entries: u64,
    /// Guest instructions retired inside compiled traces.
    pub translated_instructions: u64,
    /// Guest cycles charged inside compiled traces.
    pub translated_cycles: u64,
    /// Guest instructions retired by the interpreter fallback.
    pub interpreted_instructions: u64,
    /// Guest cycles charged by the interpreter fallback.
    pub interpreted_cycles: u64,
    /// Deoptimizations back to the interpreter, all reasons summed.
    pub deopts: u64,
    /// Compiled traces dropped by invalidation.
    pub invalidations: u64,
}

impl From<ras_machine::TranslationStats> for TranslationCounters {
    fn from(s: ras_machine::TranslationStats) -> TranslationCounters {
        TranslationCounters {
            blocks_discovered: s.blocks_discovered,
            blocks_compiled: s.blocks_compiled,
            block_entries: s.block_entries,
            translated_instructions: s.translated_instructions,
            translated_cycles: s.translated_cycles,
            interpreted_instructions: s.interpreted_instructions,
            interpreted_cycles: s.interpreted_cycles,
            deopts: s.deopts(),
            invalidations: s.invalidations,
        }
    }
}

impl TranslationCounters {
    /// The compact text section, matching [`Metrics::render`]'s layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "translation tier");
        let mut line = |k: &str, v: String| {
            let _ = writeln!(s, "  {k:<28} {v}");
        };
        line("blocks discovered", self.blocks_discovered.to_string());
        line("blocks compiled", self.blocks_compiled.to_string());
        line("block entries", self.block_entries.to_string());
        line(
            "translated instructions",
            self.translated_instructions.to_string(),
        );
        line("translated cycles", self.translated_cycles.to_string());
        line(
            "interpreted instructions",
            self.interpreted_instructions.to_string(),
        );
        line("interpreted cycles", self.interpreted_cycles.to_string());
        line("deopts", self.deopts.to_string());
        line("invalidations", self.invalidations.to_string());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_counters_render_every_field() {
        let cp = CheckpointCounters {
            checkpoints: 4,
            undo_replayed: 17,
            snapshot_bytes: 2048,
            states_deduped: 3,
        };
        let text = Metrics::default().render_with_checkpoints(&cp);
        for needle in [
            "checkpoint engine",
            "checkpoints",
            "undo entries replayed",
            "snapshot bytes",
            "states deduped",
            "2048",
            "17",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn translation_counters_convert_and_render_every_field() {
        let s = ras_machine::TranslationStats {
            blocks_discovered: 9,
            blocks_compiled: 3,
            block_entries: 41,
            translated_instructions: 5000,
            translated_cycles: 5100,
            interpreted_instructions: 77,
            interpreted_cycles: 80,
            deopt_sequence: 2,
            deopt_deadline: 5,
            invalidations: 1,
            ..Default::default()
        };
        let tc = TranslationCounters::from(s);
        assert_eq!(tc.deopts, 7, "deopt reasons sum into one counter");
        let text = tc.render();
        for needle in [
            "translation tier",
            "blocks discovered",
            "blocks compiled",
            "block entries",
            "translated instructions",
            "translated cycles",
            "interpreted instructions",
            "interpreted cycles",
            "deopts",
            "invalidations",
            "5000",
            "41",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    fn feed(metrics: &mut Metrics, events: &[(u64, ObsEvent)]) {
        for (clock, e) in events {
            metrics.apply(*clock, e);
        }
    }

    #[test]
    fn run_cycles_and_context_switches() {
        let mut m = Metrics::default();
        feed(
            &mut m,
            &[
                (0, ObsEvent::Dispatch { thread: 0 }),
                (
                    100,
                    ObsEvent::SwitchOut {
                        thread: 0,
                        reason: SwitchReason::Quantum,
                        inside_sequence: false,
                    },
                ),
                (110, ObsEvent::Dispatch { thread: 1 }),
                (
                    200,
                    ObsEvent::SwitchOut {
                        thread: 1,
                        reason: SwitchReason::Exit,
                        inside_sequence: false,
                    },
                ),
                (210, ObsEvent::Dispatch { thread: 0 }),
                (
                    300,
                    ObsEvent::SwitchOut {
                        thread: 0,
                        reason: SwitchReason::Exit,
                        inside_sequence: false,
                    },
                ),
            ],
        );
        assert_eq!(m.dispatches, 3);
        assert_eq!(m.context_switches, 3);
        assert_eq!(m.quantum_expiries, 1);
        assert_eq!(m.run_cycles, 100 + 90 + 90);
        assert_eq!(m.thread(0).unwrap().run_cycles, 190);
        assert_eq!(m.thread(1).unwrap().run_cycles, 90);
        assert_eq!(m.thread(0).unwrap().quantum_expiries, 1);
    }

    #[test]
    fn redispatch_of_the_same_thread_is_not_a_context_switch() {
        let mut m = Metrics::default();
        feed(
            &mut m,
            &[
                (0, ObsEvent::Dispatch { thread: 2 }),
                (
                    10,
                    ObsEvent::SwitchOut {
                        thread: 2,
                        reason: SwitchReason::Quantum,
                        inside_sequence: false,
                    },
                ),
                (12, ObsEvent::Dispatch { thread: 2 }),
            ],
        );
        assert_eq!(m.dispatches, 2);
        assert_eq!(m.context_switches, 1);
    }

    #[test]
    fn rollback_rate_per_100_quanta() {
        let mut m = Metrics::default();
        assert_eq!(m.rollbacks_per_100_quanta(), 0.0);
        for clock in 0..200u64 {
            m.apply(
                clock,
                &ObsEvent::SwitchOut {
                    thread: 0,
                    reason: SwitchReason::Quantum,
                    inside_sequence: false,
                },
            );
        }
        m.apply(
            201,
            &ObsEvent::Rollback {
                thread: 0,
                from: 9,
                to: 5,
                wasted_cycles: 4,
            },
        );
        assert!((m.rollbacks_per_100_quanta() - 0.5).abs() < 1e-12);
        assert_eq!(m.wasted_cycles, 4);
    }

    #[test]
    fn rseq_abort_rate_per_100_quanta() {
        let mut m = Metrics::default();
        assert_eq!(m.aborts_per_100_quanta(), 0.0);
        for clock in 0..200u64 {
            m.apply(
                clock,
                &ObsEvent::SwitchOut {
                    thread: 0,
                    reason: SwitchReason::Quantum,
                    inside_sequence: false,
                },
            );
        }
        m.apply(
            100,
            &ObsEvent::RseqRegister {
                thread: 0,
                area: 64,
            },
        );
        m.apply(
            201,
            &ObsEvent::RseqAbort {
                thread: 0,
                from: 11,
                abort_ip: 20,
                wasted_cycles: 2,
            },
        );
        assert!((m.aborts_per_100_quanta() - 0.5).abs() < 1e-12);
        assert_eq!(m.rseq_registrations, 1);
        assert_eq!(m.rseq_wasted_cycles, 2);
        assert_eq!(m.thread(0).unwrap().wasted_cycles, 2);
        let text = m.render();
        assert!(text.contains("rseq aborts"));
        assert!(text.contains("rseq registrations"));
    }

    #[test]
    fn lock_contention_window_spans_failed_probes() {
        let mut m = Metrics::default();
        feed(
            &mut m,
            &[
                (
                    10,
                    ObsEvent::LockAttempt {
                        thread: 1,
                        addr: 64,
                        acquired: false,
                    },
                ),
                (
                    20,
                    ObsEvent::LockAttempt {
                        thread: 1,
                        addr: 64,
                        acquired: false,
                    },
                ),
                (
                    45,
                    ObsEvent::LockAttempt {
                        thread: 1,
                        addr: 64,
                        acquired: true,
                    },
                ),
                (
                    50,
                    ObsEvent::LockAttempt {
                        thread: 2,
                        addr: 64,
                        acquired: true,
                    },
                ),
            ],
        );
        assert_eq!(m.lock_attempts, 4);
        assert_eq!(m.lock_contended_attempts, 2);
        assert_eq!(m.lock_contention_cycles, 35);
    }

    #[test]
    fn render_mentions_the_headline_counters() {
        let mut m = Metrics::default();
        m.apply(0, &ObsEvent::Dispatch { thread: 0 });
        let text = m.render();
        assert!(text.contains("rollbacks"));
        assert!(text.contains("quantum expiries"));
        assert!(text.contains("per-thread"));
        assert!(text.contains("t0:"));
    }

    #[test]
    fn empty_recording_renders_without_division_artifacts() {
        // An enabled-but-untouched recording must render cleanly: no
        // NaN/inf from 0/0, and no fake "0.00 per 100 quanta" rate when
        // no quantum ever expired.
        let rec = crate::Recording::new(true);
        assert!(rec.events().is_empty());
        let m = rec.metrics();
        assert_eq!(m.rollbacks_per_100_quanta(), 0.0);
        assert_eq!(m.aborts_per_100_quanta(), 0.0);
        let text = m.render();
        assert!(!text.contains("NaN") && !text.contains("inf"));
        assert!(text.contains("rollbacks                    0 (n/a per 100 quanta)"));
        assert!(text.contains("(avg n/a per rollback)"));
        assert!(text.contains("(avg n/a per abort)"));
    }

    #[test]
    fn zero_quanta_with_rollbacks_still_renders_na_rate() {
        // Rollbacks can happen without quantum expiries (voluntary
        // yields inside a sequence): the per-quanta rate is undefined,
        // the per-rollback average is not.
        let mut m = Metrics::default();
        m.apply(
            10,
            &ObsEvent::Rollback {
                thread: 0,
                from: 8,
                to: 4,
                wasted_cycles: 6,
            },
        );
        assert_eq!(m.quantum_expiries, 0);
        assert_eq!(m.rollbacks_per_100_quanta(), 0.0);
        let text = m.render();
        assert!(text.contains("1 (n/a per 100 quanta)"));
        assert!(text.contains("6 (avg 6.0 per rollback)"));
    }

    #[test]
    fn nonzero_quanta_renders_a_real_rate() {
        let mut m = Metrics::default();
        m.apply(
            5,
            &ObsEvent::SwitchOut {
                thread: 0,
                reason: SwitchReason::Quantum,
                inside_sequence: false,
            },
        );
        m.apply(
            10,
            &ObsEvent::Rollback {
                thread: 0,
                from: 8,
                to: 4,
                wasted_cycles: 3,
            },
        );
        let text = m.render();
        assert!(text.contains("(100.00 per 100 quanta)"));
    }
}
