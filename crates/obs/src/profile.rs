//! Symbolized hot-path profiles from the machine's per-PC cycle histogram.

use std::fmt::Write as _;

use ras_isa::Program;

/// One bucket of the symbolized profile: a program label and the cycles
/// spent at or after it (up to the next label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// The label name, or `"(unlabeled)"` for cycles before the first
    /// label.
    pub symbol: String,
    /// First PC of the bucket.
    pub start: u32,
    /// Cycles attributed to the bucket.
    pub cycles: u64,
}

/// Buckets a per-PC cycle histogram (see
/// `ras_machine::Machine::pc_cycles`) through `program`'s labels: each PC
/// is attributed to the nearest label at or below it. Returns buckets
/// sorted by cycles, hottest first; empty buckets are dropped.
pub fn symbolized_profile(program: &Program, pc_cycles: &[u64]) -> Vec<HotSpot> {
    let mut labels: Vec<(u32, &str)> = program.symbols().map(|(name, addr)| (addr, name)).collect();
    labels.sort_unstable();
    let mut spots: Vec<HotSpot> = Vec::new();
    for (pc, &cycles) in pc_cycles.iter().enumerate() {
        if cycles == 0 {
            continue;
        }
        let pc = pc as u32;
        let (start, symbol) = match labels.iter().rev().find(|&&(addr, _)| addr <= pc) {
            Some(&(addr, name)) => (addr, name),
            None => (0, "(unlabeled)"),
        };
        match spots.iter_mut().find(|s| s.start == start) {
            Some(spot) => spot.cycles += cycles,
            None => spots.push(HotSpot {
                symbol: symbol.to_owned(),
                start,
                cycles,
            }),
        }
    }
    spots.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.start.cmp(&b.start)));
    spots
}

/// Renders the profile as a text table, one line per bucket with its
/// share of the total.
pub fn render_hotspots(spots: &[HotSpot]) -> String {
    let total: u64 = spots.iter().map(|s| s.cycles).sum();
    let mut s = String::new();
    let _ = writeln!(s, "hot paths (cycles by label)");
    for spot in spots {
        let share = if total == 0 {
            0.0
        } else {
            spot.cycles as f64 * 100.0 / total as f64
        };
        let _ = writeln!(
            s,
            "  {:<24} @{:<6} {:>12} cycles  {share:5.1}%",
            spot.symbol, spot.start, spot.cycles
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};

    #[test]
    fn cycles_bucket_to_the_nearest_label_below() {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 1); // @0, before any label
        asm.bind_symbol("alpha"); // @1
        asm.nop(); // @1
        asm.nop(); // @2
        asm.bind_symbol("beta"); // @3
        asm.nop(); // @3
        asm.halt(); // @4
        let program = asm.finish().unwrap();
        let pc_cycles = [5u64, 10, 20, 40, 0];
        let spots = symbolized_profile(&program, &pc_cycles);
        assert_eq!(spots.len(), 3);
        assert_eq!(spots[0].symbol, "beta");
        assert_eq!(spots[0].cycles, 40);
        assert_eq!(spots[1].symbol, "alpha");
        assert_eq!(spots[1].cycles, 30);
        assert_eq!(spots[2].symbol, "(unlabeled)");
        assert_eq!(spots[2].cycles, 5);
        let text = render_hotspots(&spots);
        assert!(text.contains("beta"));
        assert!(text.contains("53.3%"));
    }

    #[test]
    fn empty_histogram_yields_no_spots() {
        let mut asm = Asm::new();
        asm.halt();
        let program = asm.finish().unwrap();
        assert!(symbolized_profile(&program, &[0, 0]).is_empty());
        assert_eq!(render_hotspots(&[]), "hot paths (cycles by label)\n");
    }
}
