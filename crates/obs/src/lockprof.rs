//! Lock hold/contention profiling from the machine's data-access log.
//!
//! Most of the paper's mechanisms release a lock with an ordinary store
//! the kernel never observes, so event-level accounting cannot measure
//! hold time. The access log can: every load, store, and RMW of the lock
//! word carries the value it saw or wrote, and replaying those value
//! transitions reconstructs the lock's life cycle for *any* mechanism —
//! optimistic RAS sequences, hardware Test-And-Set, and the kernel
//! emulation alike.

use ras_machine::{AccessKind, MemAccess};

/// Aggregate lock statistics for one lock word.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockProfile {
    /// Successful acquisitions (an RMW that saw zero, or a nonzero store).
    pub acquisitions: u64,
    /// Releases (a store of zero).
    pub releases: u64,
    /// Contended probes: an RMW that saw the lock held, or a load that
    /// observed a nonzero word.
    pub contended_probes: u64,
    /// Total cycles the lock was held (acquire to release).
    pub hold_cycles: u64,
    /// The longest single hold.
    pub max_hold_cycles: u64,
    /// Cycles from the first contended probe of a streak to the acquire
    /// that ended it.
    pub contention_cycles: u64,
}

/// Replays the accesses to `lock_addr` and reconstructs the lock's hold
/// and contention profile. Accesses to other addresses are ignored, so
/// the whole access log can be passed directly.
pub fn lock_profile(accesses: &[MemAccess], lock_addr: u32) -> LockProfile {
    let mut p = LockProfile::default();
    let mut held_since: Option<u64> = None;
    let mut contending_since: Option<u64> = None;
    let acquire = |p: &mut LockProfile,
                   held_since: &mut Option<u64>,
                   contending_since: &mut Option<u64>,
                   clock: u64| {
        p.acquisitions += 1;
        if let Some(since) = contending_since.take() {
            p.contention_cycles += clock.saturating_sub(since);
        }
        *held_since = Some(clock);
    };
    for a in accesses.iter().filter(|a| a.addr == lock_addr) {
        match a.kind {
            AccessKind::Rmw => {
                // The logged value of an RMW is the *old* word.
                if a.value == 0 {
                    acquire(&mut p, &mut held_since, &mut contending_since, a.clock);
                } else {
                    p.contended_probes += 1;
                    contending_since.get_or_insert(a.clock);
                }
            }
            AccessKind::Load => {
                // The optimistic probe of a RAS or Lamport sequence: a
                // nonzero observation means someone else holds the lock.
                if a.value != 0 {
                    p.contended_probes += 1;
                    contending_since.get_or_insert(a.clock);
                }
            }
            AccessKind::Store => {
                if a.value == 0 {
                    p.releases += 1;
                    if let Some(since) = held_since.take() {
                        let hold = a.clock.saturating_sub(since);
                        p.hold_cycles += hold;
                        p.max_hold_cycles = p.max_hold_cycles.max(hold);
                    }
                } else if held_since.is_none() {
                    // The committing store of an optimistic sequence.
                    acquire(&mut p, &mut held_since, &mut contending_since, a.clock);
                }
                // A nonzero store while the lock is already held is the
                // unconditional overwrite of a failed Test-And-Set (the
                // sequence always writes 1 and returns the old value):
                // the attempt was already counted by the load that saw
                // the lock taken, and ownership does not change.
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(clock: u64, kind: AccessKind, value: u32) -> MemAccess {
        MemAccess {
            pc: 0,
            addr: 64,
            kind,
            clock,
            atomic: kind == AccessKind::Rmw,
            value,
        }
    }

    #[test]
    fn tas_style_lifecycle() {
        // acquire (old 0) at 10, contended probes at 20/30, release at 40,
        // acquire at 50, release at 55.
        let log = vec![
            acc(10, AccessKind::Rmw, 0),
            acc(20, AccessKind::Rmw, 1),
            acc(30, AccessKind::Rmw, 1),
            acc(40, AccessKind::Store, 0),
            acc(50, AccessKind::Rmw, 0),
            acc(55, AccessKind::Store, 0),
        ];
        let p = lock_profile(&log, 64);
        assert_eq!(p.acquisitions, 2);
        assert_eq!(p.releases, 2);
        assert_eq!(p.contended_probes, 2);
        assert_eq!(p.hold_cycles, 30 + 5);
        assert_eq!(p.max_hold_cycles, 30);
        assert_eq!(p.contention_cycles, 50 - 20);
    }

    #[test]
    fn ras_style_lifecycle_with_optimistic_loads() {
        // load sees 0 (free), store 1 commits the acquire, load by the
        // other thread sees 1 (contended), store 0 releases.
        let log = vec![
            acc(5, AccessKind::Load, 0),
            acc(8, AccessKind::Store, 1),
            acc(12, AccessKind::Load, 1),
            acc(20, AccessKind::Store, 0),
            acc(22, AccessKind::Load, 0),
            acc(25, AccessKind::Store, 1),
            acc(31, AccessKind::Store, 0),
        ];
        let p = lock_profile(&log, 64);
        assert_eq!(p.acquisitions, 2);
        assert_eq!(p.releases, 2);
        assert_eq!(p.contended_probes, 1);
        assert_eq!(p.hold_cycles, 12 + 6);
        assert_eq!(p.contention_cycles, 25 - 12);
    }

    #[test]
    fn failed_tas_overwrite_store_is_not_an_acquire() {
        // Thread A acquires optimistically; thread B's failed TAS loads
        // 1 and still stores 1 (the sequence writes unconditionally and
        // returns the old value). The overwrite must not steal
        // ownership: A's release at 30 closes A's 22-cycle hold, and B
        // acquires cleanly afterwards.
        let log = vec![
            acc(5, AccessKind::Load, 0),
            acc(8, AccessKind::Store, 1),
            acc(12, AccessKind::Load, 1),
            acc(14, AccessKind::Store, 1),
            acc(30, AccessKind::Store, 0),
            acc(35, AccessKind::Load, 0),
            acc(37, AccessKind::Store, 1),
            acc(40, AccessKind::Store, 0),
        ];
        let p = lock_profile(&log, 64);
        assert_eq!(p.acquisitions, 2);
        assert_eq!(p.releases, 2);
        assert_eq!(p.contended_probes, 1);
        assert_eq!(p.hold_cycles, 22 + 3);
        assert_eq!(p.max_hold_cycles, 22);
        assert_eq!(p.contention_cycles, 37 - 12);
    }

    #[test]
    fn other_addresses_are_ignored() {
        let mut other = acc(10, AccessKind::Rmw, 0);
        other.addr = 128;
        let p = lock_profile(&[other], 64);
        assert_eq!(p, LockProfile::default());
    }
}
