//! Observability for the restartable-atomic-sequence reproduction.
//!
//! The paper's central empirical claim is that preemption inside a
//! restartable atomic sequence is *rare*, so optimistic rollback is nearly
//! free. This crate turns that claim into something measurable: a
//! structured event layer the kernel emits through the [`Recorder`] trait
//! (context switches, rollbacks with wasted-cycle attribution, syscalls,
//! lock acquire/contend, quantum expiries), aggregated into per-thread and
//! global [`Metrics`], plus exporters — Chrome/Perfetto trace-event JSON
//! ([`chrome_trace`]) and a compact text report ([`Metrics::render`]).
//!
//! The layer is zero-cost when disabled: the kernel holds an
//! `Option<Box<Recording>>` and every emission site is a single
//! `is_some` branch on the cold scheduling path; the machine's hot
//! interpreter loop is never touched.
//!
//! Two further profiles complement the event stream:
//!
//! * [`lock_profile`] reconstructs lock hold and contention time from the
//!   machine's data-access log by replaying the lock word's value
//!   transitions — mechanism-agnostic, so it works for optimistic RAS
//!   sequences whose release is an ordinary store the kernel never sees;
//! * [`symbolized_profile`] buckets the machine's per-PC cycle histogram
//!   back through program labels into a hot-path profile.
//!
//! Everything here is deterministic: same run, same events, same JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod json;
mod lockprof;
mod metrics;
mod perfetto;
mod profile;
mod recorder;
mod snapshot;
mod telemetry;

pub use crate::event::{ObsEvent, SwitchReason, TimedObsEvent};
pub use crate::hist::{bucket_bounds, bucket_index, Log2Histogram, HIST_BUCKETS};
pub use crate::json::{parse_json, Json};
pub use crate::lockprof::{lock_profile, LockProfile};
pub use crate::metrics::{CheckpointCounters, Metrics, ThreadMetrics, TranslationCounters};
pub use crate::perfetto::{chrome_trace, chrome_trace_to, validate_chrome_trace, TraceSummary};
pub use crate::profile::{render_hotspots, symbolized_profile, HotSpot};
pub use crate::recorder::{Recorder, Recording};
pub use crate::snapshot::{
    validate_stat_snapshot, SnapshotMeta, StatSnapshot, StatSummary, STAT_SCHEMA,
};
pub use crate::telemetry::{
    exact_lock_replay, replay_events, CounterId, ExactLockStats, GaugeId, LockTelemetry, Registry,
    ShardedCounter, Telemetry, ThreadTelemetry,
};
