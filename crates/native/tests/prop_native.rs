//! Property tests for the native implementations: mutual exclusion and
//! update atomicity hold for fuzzed thread/iteration mixes.

use proptest::prelude::*;
use ras_native::{BundledTas, FastMutex, RestartableU32};
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads × M non-atomic increments under the fast mutex never
    /// lose an update.
    #[test]
    fn fast_mutex_excludes(threads in 1usize..6, iters in 1u64..3_000) {
        let m = FastMutex::new(threads);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let slot = m.slot().unwrap();
                let (m, counter) = (&m, &counter);
                scope.spawn(move || {
                    for _ in 0..iters {
                        let _g = m.lock(slot);
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        prop_assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    }

    /// The restartable cell's fetch-update is linearizable for arbitrary
    /// add/sub/xor mixes: the final value equals the fold of all applied
    /// operations in some order (commutative ops chosen so order is
    /// irrelevant).
    #[test]
    fn restartable_updates_compose(adds in 1u32..2_000, threads in 1usize..6) {
        let c = RestartableU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..adds {
                        c.update(|v| v.wrapping_add(3));
                    }
                });
            }
        });
        prop_assert_eq!(c.load(), (threads as u32).wrapping_mul(adds).wrapping_mul(3));
    }

    /// A spinlock built from the bundled meta TAS provides exclusion for
    /// fuzzed configurations.
    #[test]
    fn bundled_tas_spinlock_excludes(threads in 1usize..5, iters in 1u64..1_500) {
        let meta = FastMutex::new(threads);
        let lock = BundledTas::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let slot = meta.slot().unwrap();
                let (meta, lock, counter) = (&meta, &lock, &counter);
                scope.spawn(move || {
                    for _ in 0..iters {
                        while lock.test_and_set(meta, slot) {
                            std::thread::yield_now();
                        }
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.clear();
                    }
                });
            }
        });
        prop_assert_eq!(counter.load(Ordering::Relaxed), threads as u64 * iters);
    }
}
