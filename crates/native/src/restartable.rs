//! A modern restartable-sequence analogue.
//!
//! The paper's mechanism survives today as Linux `rseq` and the ARM kuser
//! helpers: a short read-compute-commit sequence that the kernel restarts
//! if the thread is preempted before the committing store. Portable user
//! space cannot ask the kernel for that guarantee, so this native
//! analogue validates the commit instead: the value and a sequence number
//! live in one atomic word, the "sequence" runs on a snapshot, and the
//! commit is a compare-exchange that fails (restarting the sequence)
//! whenever anything intervened — the same optimistic structure with a
//! pessimistic commit.
//!
//! The restart statistics mirror the paper's Table 3 "Restarts" column:
//! under light contention, sequences almost never restart, which is
//! exactly the observation that makes optimism pay.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A 32-bit cell updated by restartable read-modify-write sequences.
///
/// # Example
///
/// ```
/// use ras_native::RestartableU32;
///
/// let cell = RestartableU32::new(0);
/// // Fetch-and-add as a restartable sequence.
/// let old = cell.update(|v| v + 7);
/// assert_eq!(old, 0);
/// assert_eq!(cell.load(), 7);
///
/// // Test-And-Set as a restartable sequence (Figure 3's shape).
/// let was_set = cell.update(|_| 1) != 0;
/// assert!(was_set);
/// ```
#[derive(Debug, Default)]
pub struct RestartableU32 {
    /// Low 32 bits: value. High 32 bits: commit sequence number.
    word: AtomicU64,
    restarts: AtomicUsize,
}

impl RestartableU32 {
    /// Creates a cell holding `value`.
    pub fn new(value: u32) -> RestartableU32 {
        RestartableU32 {
            word: AtomicU64::new(u64::from(value)),
            restarts: AtomicUsize::new(0),
        }
    }

    /// Reads the current value.
    pub fn load(&self) -> u32 {
        self.word.load(Ordering::SeqCst) as u32
    }

    /// Runs the restartable sequence `f` on a snapshot of the value and
    /// commits its result. If the commit detects interference the whole
    /// sequence re-executes from the start — so `f` may run several times
    /// and must be side-effect-free, exactly like the instruction
    /// sequences of §2.4. Returns the old value the successful execution
    /// observed.
    pub fn update(&self, mut f: impl FnMut(u32) -> u32) -> u32 {
        loop {
            let snapshot = self.word.load(Ordering::SeqCst);
            let old = snapshot as u32;
            let seq = snapshot >> 32;
            let new = (seq.wrapping_add(1) << 32) | u64::from(f(old));
            match self
                .word
                .compare_exchange(snapshot, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return old,
                Err(_) => {
                    self.restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Test-And-Set built on [`RestartableU32::update`] (Figure 3).
    /// Returns `true` if the cell was already set.
    pub fn test_and_set(&self) -> bool {
        self.update(|_| 1) != 0
    }

    /// Atomic clear (a plain committing store; still sequenced so
    /// concurrent updates restart).
    pub fn clear(&self) {
        self.update(|_| 0);
    }

    /// How many sequence executions were restarted by interference — the
    /// analogue of Table 3's "Restarts" column.
    pub fn restart_count(&self) -> usize {
        self.restarts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_returns_old_value() {
        let c = RestartableU32::new(5);
        assert_eq!(c.update(|v| v * 2), 5);
        assert_eq!(c.load(), 10);
    }

    #[test]
    fn tas_and_clear() {
        let c = RestartableU32::new(0);
        assert!(!c.test_and_set());
        assert!(c.test_and_set());
        c.clear();
        assert!(!c.test_and_set());
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        const THREADS: usize = 8;
        const ITERS: u32 = 50_000;
        let c = RestartableU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..ITERS {
                        c.update(|v| v.wrapping_add(1));
                    }
                });
            }
        });
        assert_eq!(c.load(), THREADS as u32 * ITERS);
    }

    #[test]
    fn uncontended_sequences_never_restart() {
        let c = RestartableU32::new(0);
        for _ in 0..10_000 {
            c.update(|v| v + 1);
        }
        assert_eq!(c.restart_count(), 0, "optimism is free without contention");
    }

    #[test]
    fn sequence_wraps_without_corrupting_value() {
        let c = RestartableU32::new(u32::MAX);
        assert_eq!(c.update(|v| v.wrapping_add(1)), u32::MAX);
        assert_eq!(c.load(), 0);
    }
}
