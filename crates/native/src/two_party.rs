//! The two classic two-thread software-reservation algorithms the paper
//! cites alongside Lamport's (§2.2): Dekker's algorithm [Dijkstra 68b]
//! and Peterson's algorithm [Peterson 81]. Both need only loads and
//! stores with sequential consistency — the historical proof that mutual
//! exclusion is possible without hardware atomics, at the price the paper
//! quantifies.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

/// Which of the two participants the caller is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Participant 0.
    Left,
    /// Participant 1.
    Right,
}

impl Side {
    fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    /// The opposite participant.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Peterson's two-thread mutual exclusion algorithm.
///
/// # Example
///
/// ```
/// use ras_native::{PetersonMutex, Side};
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let m = PetersonMutex::new();
/// let counter = AtomicU32::new(0);
/// std::thread::scope(|s| {
///     for side in [Side::Left, Side::Right] {
///         let (m, counter) = (&m, &counter);
///         s.spawn(move || {
///             for _ in 0..10_000 {
///                 let _g = m.lock(side);
///                 let v = counter.load(Ordering::Relaxed);
///                 counter.store(v + 1, Ordering::Relaxed);
///             }
///         });
///     }
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 20_000);
/// ```
#[derive(Debug, Default)]
pub struct PetersonMutex {
    interested: [CachePadded<AtomicBool>; 2],
    /// Whose turn it is to *wait* (the classic `turn` variable).
    turn: CachePadded<AtomicUsize>,
}

impl PetersonMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> PetersonMutex {
        PetersonMutex::default()
    }

    /// Acquires the lock for `side`. The two sides must be used by at most
    /// one thread each at any moment.
    pub fn lock(&self, side: Side) -> PetersonGuard<'_> {
        self.lock_with(side, std::thread::yield_now)
    }

    /// Like [`PetersonMutex::lock`], but calls `pause` on each spin
    /// iteration — required under cooperative schedulers (such as
    /// [`crate::run_interleaved`]'s virtual uniprocessor), where the
    /// waiter must explicitly let the lock holder run.
    pub fn lock_with(&self, side: Side, mut pause: impl FnMut()) -> PetersonGuard<'_> {
        let me = side.index();
        let other = side.other().index();
        self.interested[me].store(true, Ordering::SeqCst);
        self.turn.store(me, Ordering::SeqCst);
        while self.interested[other].load(Ordering::SeqCst)
            && self.turn.load(Ordering::SeqCst) == me
        {
            pause();
        }
        PetersonGuard { mutex: self, side }
    }

    /// Runs `f` under the lock.
    pub fn with<R>(&self, side: Side, f: impl FnOnce() -> R) -> R {
        let _g = self.lock(side);
        f()
    }
}

/// RAII guard for [`PetersonMutex`].
#[derive(Debug)]
pub struct PetersonGuard<'a> {
    mutex: &'a PetersonMutex,
    side: Side,
}

impl Drop for PetersonGuard<'_> {
    fn drop(&mut self) {
        self.mutex.interested[self.side.index()].store(false, Ordering::SeqCst);
    }
}

/// Dekker's algorithm — the first correct software mutual exclusion
/// solution, with explicit turn-based backoff on contention.
#[derive(Debug, Default)]
pub struct DekkerMutex {
    wants: [CachePadded<AtomicBool>; 2],
    turn: CachePadded<AtomicUsize>,
}

impl DekkerMutex {
    /// Creates an unlocked mutex.
    pub fn new() -> DekkerMutex {
        DekkerMutex::default()
    }

    /// Acquires the lock for `side`.
    pub fn lock(&self, side: Side) -> DekkerGuard<'_> {
        self.lock_with(side, std::thread::yield_now)
    }

    /// Like [`DekkerMutex::lock`], but calls `pause` on each spin
    /// iteration (see [`PetersonMutex::lock_with`]).
    pub fn lock_with(&self, side: Side, mut pause: impl FnMut()) -> DekkerGuard<'_> {
        let me = side.index();
        let other = side.other().index();
        self.wants[me].store(true, Ordering::SeqCst);
        while self.wants[other].load(Ordering::SeqCst) {
            if self.turn.load(Ordering::SeqCst) != me {
                // Back off: retract the claim until our turn comes around.
                self.wants[me].store(false, Ordering::SeqCst);
                while self.turn.load(Ordering::SeqCst) != me {
                    pause();
                }
                self.wants[me].store(true, Ordering::SeqCst);
            } else {
                pause();
            }
        }
        DekkerGuard { mutex: self, side }
    }

    /// Runs `f` under the lock.
    pub fn with<R>(&self, side: Side, f: impl FnOnce() -> R) -> R {
        let _g = self.lock(side);
        f()
    }
}

/// RAII guard for [`DekkerMutex`].
#[derive(Debug)]
pub struct DekkerGuard<'a> {
    mutex: &'a DekkerMutex,
    side: Side,
}

impl Drop for DekkerGuard<'_> {
    fn drop(&mut self) {
        let me = self.side.index();
        // Hand the turn to the other side before releasing — Dekker's
        // fairness step.
        self.mutex
            .turn
            .store(self.side.other().index(), Ordering::SeqCst);
        self.mutex.wants[me].store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer(lock_with: impl Fn(Side, &dyn Fn()) + Sync) -> u64 {
        const ITERS: u64 = 40_000;
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for side in [Side::Left, Side::Right] {
                let (lock_with, counter) = (&lock_with, &counter);
                scope.spawn(move || {
                    for _ in 0..ITERS {
                        lock_with(side, &|| {
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn peterson_excludes_under_contention() {
        let m = PetersonMutex::new();
        assert_eq!(hammer(|side, f| m.with(side, f)), 80_000);
    }

    #[test]
    fn dekker_excludes_under_contention() {
        let m = DekkerMutex::new();
        assert_eq!(hammer(|side, f| m.with(side, f)), 80_000);
    }

    #[test]
    fn sides_are_opposites() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::Left.other().other(), Side::Left);
    }

    #[test]
    fn uncontended_lock_is_reentrant_free() {
        let m = PetersonMutex::new();
        for _ in 0..1000 {
            let _g = m.lock(Side::Left);
        }
        let d = DekkerMutex::new();
        for _ in 0..1000 {
            let _g = d.lock(Side::Right);
        }
    }
}
