//! Native-atomics companions to the simulator: the paper's algorithms
//! implemented with real hardware atomics so they can be exercised (and
//! benchmarked) on the host as well as on the simulated uniprocessor.
//!
//! * [`FastMutex`] — Lamport's fast mutual exclusion (Figure 1) with
//!   sequentially consistent atomics, usable on a real multiprocessor.
//! * [`BundledTas`] — the "meta" Test-And-Set packaging of Figure 2.
//! * [`RestartableU32`] — a modern restartable-sequence analogue in the
//!   style of Linux `rseq`, the paper's direct descendant: optimistic
//!   read-compute-commit with restart-on-interference.
//! * [`PetersonMutex`] / [`DekkerMutex`] — the two-thread
//!   software-reservation classics §2.2 cites alongside Lamport's
//!   algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interleave;
mod lamport;
mod meta;
mod restartable;
mod two_party;

pub use interleave::{run_interleaved, Cpu};
pub use lamport::{FastMutex, FastMutexGuard, Slot};
pub use meta::BundledTas;
pub use restartable::RestartableU32;
pub use two_party::{DekkerGuard, DekkerMutex, PetersonGuard, PetersonMutex, Side};
