//! Lamport's fast mutual exclusion algorithm with real atomics — the
//! native mirror of the simulator's Figure 1 implementation, usable on an
//! actual multiprocessor.
//!
//! The algorithm needs sequentially consistent accesses to its `x`, `y`,
//! and `b` variables, so every operation here uses [`Ordering::SeqCst`].
//! As the paper notes (§2.2), storage is `O(n)` per lock, and threads must
//! register for a slot before participating.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

/// A participant slot in a [`FastMutex`], handed out by
/// [`FastMutex::slot`]. The wrapped index is the thread's identifier `i`
/// in Figure 1 (stored 1-based internally so that 0 can mean "free").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(usize);

impl Slot {
    /// The zero-based slot index.
    pub fn index(self) -> usize {
        self.0 - 1
    }
}

/// Lamport's fast mutual exclusion lock for up to `n` pre-registered
/// threads.
///
/// In the uncontended case, `lock` costs two loads and three stores plus
/// the guard bookkeeping — the "fast path" that gives the algorithm its
/// name. Contention and collisions fall into bounded spinning with
/// [`std::thread::yield_now`], the multiprocessor analogue of the paper's
/// `await`.
///
/// # Example
///
/// ```
/// use ras_native::FastMutex;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let mutex = FastMutex::new(2);
/// let counter = AtomicU64::new(0);
/// std::thread::scope(|scope| {
///     for _ in 0..2 {
///         let slot = mutex.slot().unwrap();
///         let (mutex, counter) = (&mutex, &counter);
///         scope.spawn(move || {
///             for _ in 0..1000 {
///                 let _guard = mutex.lock(slot);
///                 // Non-atomic-looking read-modify-write, made safe by
///                 // the mutex.
///                 let v = counter.load(Ordering::Relaxed);
///                 counter.store(v + 1, Ordering::Relaxed);
///             }
///         });
///     }
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 2000);
/// ```
#[derive(Debug)]
pub struct FastMutex {
    /// Figure 1's `y`: the owner's id, 0 when free.
    y: CachePadded<AtomicUsize>,
    /// Figure 1's `x`: the most recent reservation.
    x: CachePadded<AtomicUsize>,
    /// Figure 1's `b`: per-thread busy flags.
    b: Box<[CachePadded<AtomicBool>]>,
    next_slot: AtomicUsize,
}

impl FastMutex {
    /// Creates a lock for at most `max_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero.
    pub fn new(max_threads: usize) -> FastMutex {
        assert!(max_threads > 0, "need at least one participant");
        FastMutex {
            y: CachePadded::new(AtomicUsize::new(0)),
            x: CachePadded::new(AtomicUsize::new(0)),
            b: (0..max_threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            next_slot: AtomicUsize::new(1),
        }
    }

    /// Registers the caller, returning its slot, or `None` when all slots
    /// are taken.
    pub fn slot(&self) -> Option<Slot> {
        let id = self.next_slot.fetch_add(1, Ordering::SeqCst);
        (id <= self.b.len()).then_some(Slot(id))
    }

    /// Number of participant slots.
    pub fn capacity(&self) -> usize {
        self.b.len()
    }

    fn busy(&self, id: usize) -> &AtomicBool {
        &self.b[id - 1]
    }

    /// Acquires the lock for `slot`, following Figure 1 line by line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `slot` did not come from this mutex.
    pub fn lock(&self, slot: Slot) -> FastMutexGuard<'_> {
        let i = slot.0;
        debug_assert!(i >= 1 && i <= self.b.len(), "foreign slot");
        loop {
            // start: b[i] := true; x := i.
            self.busy(i).store(true, Ordering::SeqCst);
            self.x.store(i, Ordering::SeqCst);
            if self.y.load(Ordering::SeqCst) != 0 {
                // Contention: b[i] := false; await (y = 0); goto start.
                self.busy(i).store(false, Ordering::SeqCst);
                while self.y.load(Ordering::SeqCst) != 0 {
                    std::thread::yield_now();
                }
                continue;
            }
            self.y.store(i, Ordering::SeqCst);
            if self.x.load(Ordering::SeqCst) != i {
                // Collision: b[i] := false; for j await (b[j] = false).
                self.busy(i).store(false, Ordering::SeqCst);
                for j in &self.b {
                    while j.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                if self.y.load(Ordering::SeqCst) != i {
                    while self.y.load(Ordering::SeqCst) != 0 {
                        std::thread::yield_now();
                    }
                    continue;
                }
            }
            return FastMutexGuard { mutex: self, slot };
        }
    }

    /// Runs `f` under the lock — convenience over [`FastMutex::lock`].
    pub fn with<R>(&self, slot: Slot, f: impl FnOnce() -> R) -> R {
        let _guard = self.lock(slot);
        f()
    }
}

/// RAII guard returned by [`FastMutex::lock`]; releases on drop
/// (Figure 1 lines 21–22: `y := 0; b[i] := false`).
#[derive(Debug)]
pub struct FastMutexGuard<'a> {
    mutex: &'a FastMutex,
    slot: Slot,
}

impl Drop for FastMutexGuard<'_> {
    fn drop(&mut self) {
        self.mutex.y.store(0, Ordering::SeqCst);
        self.mutex.busy(self.slot.0).store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn uncontended_lock_unlock() {
        let m = FastMutex::new(1);
        let slot = m.slot().unwrap();
        assert_eq!(slot.index(), 0);
        {
            let _g = m.lock(slot);
            assert_eq!(m.y.load(Ordering::SeqCst), 1);
        }
        assert_eq!(m.y.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn slots_are_bounded() {
        let m = FastMutex::new(2);
        assert!(m.slot().is_some());
        assert!(m.slot().is_some());
        assert!(m.slot().is_none(), "third registration must fail");
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let m = FastMutex::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let slot = m.slot().unwrap();
                let m = &m;
                let counter = &counter;
                scope.spawn(move || {
                    for _ in 0..ITERS {
                        let _g = m.lock(slot);
                        // Deliberately non-atomic update: only mutual
                        // exclusion makes it correct.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn with_runs_closure_exclusively() {
        let m = FastMutex::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let slot = m.slot().unwrap();
                let m = &m;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        m.with(slot, || {
                            let v = total.load(Ordering::Relaxed);
                            total.store(v + 2, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 5_000 * 2);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_capacity_is_rejected() {
        FastMutex::new(0);
    }
}
