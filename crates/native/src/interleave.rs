//! A deterministic interleaving driver for the native algorithms: runs N
//! closures on real threads but serializes them onto a virtual
//! uniprocessor, switching only at explicit [`Cpu::preemption_point`]
//! calls, in an order chosen by a seeded generator.
//!
//! This is the native analogue of the simulator's seeded preemption
//! timer: it makes races *reproducible*. The same seed yields the same
//! interleaving, so a failure found by a sweep can be replayed exactly —
//! the property the whole reproduction leans on, brought to host code.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Handle a task uses to mark the points where the virtual uniprocessor
/// may switch to another task.
#[derive(Debug)]
pub struct Cpu {
    shared: Arc<Shared>,
    id: usize,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Debug)]
struct State {
    current: usize,
    alive: Vec<bool>,
    /// xorshift state for the schedule.
    rng: u64,
    /// Records the task id at every switch decision, for replay checks.
    trace: Vec<usize>,
}

impl State {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — deterministic and dependency-free.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Picks the next runnable task (possibly the same one).
    fn pick_next(&mut self) -> Option<usize> {
        let alive: Vec<usize> = (0..self.alive.len()).filter(|&i| self.alive[i]).collect();
        if alive.is_empty() {
            return None;
        }
        let choice = alive[(self.next_u64() % alive.len() as u64) as usize];
        self.trace.push(choice);
        Some(choice)
    }
}

impl Cpu {
    /// A point at which the scheduler may preempt the calling task. Every
    /// shared-memory race in a task body must span one of these to be
    /// observable — exactly like real preemption, but deterministic.
    pub fn preemption_point(&self) {
        let mut state = self.shared.state.lock();
        debug_assert_eq!(state.current, self.id, "task ran off-schedule");
        if let Some(next) = state.pick_next() {
            state.current = next;
            if next != self.id {
                self.shared.cv.notify_all();
                while state.current != self.id {
                    self.shared.cv.wait(&mut state);
                }
            }
        }
    }

    /// The task's index, for building per-task inputs.
    pub fn id(&self) -> usize {
        self.id
    }
}

/// A boxed task body for [`run_interleaved`].
pub type InterleavedTask<'a> = Box<dyn FnOnce(&Cpu) + Send + 'a>;

/// Runs `tasks` to completion under a seeded deterministic interleaving
/// and returns the switch trace (the task chosen at each decision).
///
/// Each task receives a [`Cpu`] handle; between two of its
/// `preemption_point` calls a task runs without interference, just like
/// straight-line code between timer interrupts on a uniprocessor.
///
/// # Panics
///
/// Panics if `tasks` is empty or a task panics.
pub fn run_interleaved(seed: u64, tasks: Vec<InterleavedTask<'_>>) -> Vec<usize> {
    assert!(!tasks.is_empty(), "need at least one task");
    let n = tasks.len();
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            current: 0,
            alive: vec![true; n],
            rng: seed | 1,
            trace: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (id, task) in tasks.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            handles.push(scope.spawn(move || {
                let cpu = Cpu {
                    shared: Arc::clone(&shared),
                    id,
                };
                // Wait for our first turn.
                {
                    let mut state = shared.state.lock();
                    while state.current != id {
                        shared.cv.wait(&mut state);
                    }
                }
                task(&cpu);
                // Retire: hand the processor to someone else.
                let mut state = shared.state.lock();
                state.alive[id] = false;
                if let Some(next) = state.pick_next() {
                    state.current = next;
                }
                shared.cv.notify_all();
            }));
        }
        for h in handles {
            h.join().expect("task panicked");
        }
    });
    let state = shared.state.lock();
    state.trace.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A deliberately racy read-modify-write spanning a preemption point.
    fn racy_increments(counter: &AtomicU32, cpu: &Cpu, iters: u32) {
        for _ in 0..iters {
            let v = counter.load(Ordering::Relaxed);
            cpu.preemption_point();
            counter.store(v + 1, Ordering::Relaxed);
            cpu.preemption_point();
        }
    }

    #[test]
    fn the_race_is_real_and_seed_dependent() {
        // Across a handful of seeds, at least one interleaving must lose
        // updates — otherwise preemption points are not actually
        // switching.
        let mut lost_somewhere = false;
        for seed in 0..8 {
            let counter = AtomicU32::new(0);
            let tasks: Vec<InterleavedTask<'_>> = (0..3)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move |cpu: &Cpu| racy_increments(counter, cpu, 50))
                        as Box<dyn FnOnce(&Cpu) + Send + '_>
                })
                .collect();
            run_interleaved(seed, tasks);
            if counter.load(Ordering::Relaxed) < 150 {
                lost_somewhere = true;
            }
        }
        assert!(lost_somewhere, "no interleaving lost an update");
    }

    #[test]
    fn same_seed_same_trace() {
        let trace = |seed: u64| {
            let counter = AtomicU32::new(0);
            let tasks: Vec<InterleavedTask<'_>> = (0..4)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move |cpu: &Cpu| racy_increments(counter, cpu, 20))
                        as Box<dyn FnOnce(&Cpu) + Send + '_>
                })
                .collect();
            run_interleaved(seed, tasks)
        };
        assert_eq!(trace(7), trace(7), "determinism");
        assert_ne!(trace(7), trace(8), "seeds differ");
    }

    #[test]
    fn restartable_cell_survives_every_interleaving() {
        use crate::RestartableU32;
        for seed in 0..6 {
            let cell = RestartableU32::new(0);
            let tasks: Vec<InterleavedTask<'_>> = (0..3)
                .map(|_| {
                    let cell = &cell;
                    Box::new(move |cpu: &Cpu| {
                        for _ in 0..40 {
                            cell.update(|v| v + 1);
                            cpu.preemption_point();
                        }
                    }) as Box<dyn FnOnce(&Cpu) + Send + '_>
                })
                .collect();
            run_interleaved(seed, tasks);
            assert_eq!(cell.load(), 120, "seed {seed}");
        }
    }

    #[test]
    fn peterson_mutex_survives_every_interleaving() {
        use crate::{PetersonMutex, Side};
        for seed in 0..6 {
            let m = PetersonMutex::new();
            let counter = AtomicU32::new(0);
            let tasks: Vec<InterleavedTask<'_>> = [Side::Left, Side::Right]
                .into_iter()
                .map(|side| {
                    let (m, counter) = (&m, &counter);
                    Box::new(move |cpu: &Cpu| {
                        for _ in 0..40 {
                            // Spins must release the virtual CPU, or the
                            // waiter starves the holder.
                            let _g = m.lock_with(side, || cpu.preemption_point());
                            let v = counter.load(Ordering::Relaxed);
                            cpu.preemption_point();
                            counter.store(v + 1, Ordering::Relaxed);
                        }
                    }) as Box<dyn FnOnce(&Cpu) + Send + '_>
                })
                .collect();
            run_interleaved(seed, tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 80, "seed {seed}");
        }
    }

    #[test]
    fn single_task_runs_to_completion() {
        let counter = AtomicU32::new(0);
        let tasks: Vec<InterleavedTask<'_>> = vec![Box::new(|cpu: &Cpu| {
            for _ in 0..10 {
                cpu.preemption_point();
            }
            counter.store(1, Ordering::SeqCst);
        })];
        let trace = run_interleaved(1, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert!(trace.iter().all(|&t| t == 0));
    }
}
