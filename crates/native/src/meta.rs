//! The bundled "meta" Test-And-Set of Figure 2, natively: one
//! [`FastMutex`] guards every regular atomic object, reducing Lamport's
//! `O(n × objects)` storage to `O(n)` at the price of serializing all
//! atomic operations through one reservation structure.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::{FastMutex, Slot};

/// A word that supports Test-And-Set through a shared meta lock —
/// protocol (b) of §2.2. The word itself is one bit of information; the
/// meta structure is "constant system overhead".
///
/// # Example
///
/// ```
/// use ras_native::{BundledTas, FastMutex};
///
/// let meta = FastMutex::new(1);
/// let slot = meta.slot().unwrap();
/// let lock = BundledTas::new();
/// assert!(!lock.test_and_set(&meta, slot), "was free");
/// assert!(lock.test_and_set(&meta, slot), "now held");
/// lock.clear();
/// assert!(!lock.test_and_set(&meta, slot));
/// ```
#[derive(Debug, Default)]
pub struct BundledTas {
    word: AtomicU32,
}

impl BundledTas {
    /// Creates a cleared (unset) word.
    pub fn new() -> BundledTas {
        BundledTas::default()
    }

    /// Figure 2's `Meta-Atomic-Test-And-Set`: under the meta lock, reads
    /// the word and sets it if it was clear. Returns the *old* truth
    /// value (`false` = the caller acquired it).
    ///
    /// The store is conditional, exactly as in Figure 2: [`BundledTas::clear`]
    /// is a bare store outside the meta lock, so an unconditional store
    /// here could re-set a word cleared between the read and the write.
    pub fn test_and_set(&self, meta: &FastMutex, slot: Slot) -> bool {
        meta.with(slot, || {
            let old = self.word.load(Ordering::Relaxed);
            if old == 0 {
                self.word.store(1, Ordering::Relaxed);
            }
            old != 0
        })
    }

    /// Figure 2's `AtomicClear`: a plain store of zero, requiring no meta
    /// protection.
    pub fn clear(&self) {
        self.word.store(0, Ordering::SeqCst);
    }

    /// Whether the word is currently set (snapshot; for diagnostics).
    pub fn is_set(&self) -> bool {
        self.word.load(Ordering::SeqCst) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn tas_semantics() {
        let meta = FastMutex::new(1);
        let slot = meta.slot().unwrap();
        let t = BundledTas::new();
        assert!(!t.is_set());
        assert!(!t.test_and_set(&meta, slot));
        assert!(t.is_set());
        assert!(t.test_and_set(&meta, slot));
        t.clear();
        assert!(!t.is_set());
    }

    #[test]
    fn spinlock_built_on_bundled_tas_excludes() {
        const THREADS: usize = 4;
        const ITERS: u64 = 10_000;
        let meta = FastMutex::new(THREADS);
        let lock = BundledTas::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let slot = meta.slot().unwrap();
                let (meta, lock, counter) = (&meta, &lock, &counter);
                scope.spawn(move || {
                    for _ in 0..ITERS {
                        while lock.test_and_set(meta, slot) {
                            std::thread::yield_now();
                        }
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.clear();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn independent_words_share_one_meta() {
        // Bundling serializes unrelated objects — the drawback §2.2 calls
        // out — but they stay individually correct.
        let meta = FastMutex::new(2);
        let s1 = meta.slot().unwrap();
        let s2 = meta.slot().unwrap();
        let a = BundledTas::new();
        let b = BundledTas::new();
        assert!(!a.test_and_set(&meta, s1));
        assert!(!b.test_and_set(&meta, s2));
        assert!(a.is_set() && b.is_set());
        a.clear();
        assert!(!a.is_set() && b.is_set());
    }
}
