//! # restartable-atomics
//!
//! A full reproduction of **Bershad, Redell & Ellis, “Fast Mutual
//! Exclusion for Uniprocessors” (ASPLOS 1992)** in Rust: restartable
//! atomic sequences and every baseline the paper evaluates, running on a
//! deterministic simulated uniprocessor, plus native-atomics mirrors of
//! the algorithms.
//!
//! This crate is the front door; it re-exports the workspace:
//!
//! * [`ras_isa`] — the MIPS-R3000-like instruction set and assembler.
//! * [`ras_machine`] — the cycle-counting CPU and per-architecture cost
//!   models.
//! * [`ras_kernel`] — the simulated OS: scheduling, syscalls, and the
//!   atomicity strategies (explicit registration, designated sequences,
//!   user-level restart, hardware restart bit).
//! * [`ras_guest`] — guest code generation: Test-And-Set in every flavor,
//!   Lamport's algorithm, locks, and the paper's workloads.
//! * [`ras_core`] — the [`Mechanism`]-oriented facade and the
//!   `experiments` module that regenerates Tables 1–4.
//! * [`ras_native`] — Lamport's fast mutex and an `rseq`-style
//!   restartable cell with real atomics.
//! * [`ras_analyze`] — the static restartability verifier and landmark
//!   lints behind the `ras-lint` binary.
//!
//! # Quickstart
//!
//! ```
//! use restartable_atomics::{run_guest, Mechanism, RunOptions};
//! use restartable_atomics::workloads::{counter_loop, CounterSpec};
//!
//! // Three threads, each entering a Test-And-Set critical section 1,000
//! // times, using inlined restartable atomic sequences.
//! let spec = CounterSpec { iterations: 1_000, workers: 3, ..Default::default() };
//! let built = counter_loop(Mechanism::RasInline, &spec);
//! let report = run_guest(&built, &RunOptions::default());
//! assert!(report.micros > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ras_analyze;
pub use ras_core::*;
pub use ras_guest;
pub use ras_isa;
pub use ras_kernel;
pub use ras_machine;
pub use ras_native;
pub use ras_obs;
